/**
 * @file
 * Async evaluation service over accel::runBatch — the serving layer of
 * the ROADMAP's north star. Clients submit (configuration, model,
 * batch) requests with priorities and deadlines and get back futures;
 * a dispatcher thread coalesces queued requests into runBatch waves
 * sized by a configurable policy, so concurrent callers share the
 * thread pool the way the figure benches do.
 *
 * Three production behaviors sit between submission and evaluation:
 *
 *  - Admission control: a bounded queue with Reject / Shed / Block
 *    policies (serve/queue.hh). Rejections are reported synchronously
 *    from submit(); shed and expired requests resolve their futures
 *    with the corresponding status — nothing is silently dropped.
 *    SLO-aware admission (serve/estimator.hh) additionally refuses a
 *    request up front (RejectedHopeless) when the predicted queue
 *    wait + service time already exceeds its deadline or its
 *    tenant's p95 SLO (ServiceConfig::tenantSlo, global knobs as
 *    fallback): doomed work is turned away in microseconds instead
 *    of occupying a queue slot and failing slowly. A hopeless
 *    rejection carries Submission::suggestedDeadlineMs — the budget
 *    the estimator predicts a resubmission could meet — and requests
 *    submitted without a deadline inherit their tenant's (optionally
 *    estimator-derived) default.
 *  - Result caching: a sharded cache keyed on the canonical
 *    accel::requestKey, so repeated sweep points (figure grids, DSE
 *    re-runs) are served without re-evaluation. Identical requests in
 *    the same wave are coalesced into a single evaluation.
 *  - Metrics: per-request latency (p50/p95/p99), throughput, queue
 *    depth, and cache hit rate (serve/metrics.hh), exportable as a
 *    BENCH_micro.json-compatible snapshot.
 *
 * Determinism contract: an admitted request's result is bit-identical
 * to a direct runInference(cfg, model, batch) call — evaluation goes
 * through the same runBatch path, and the cache key covers every
 * result-relevant input byte (see accel/hash.hh). A degraded request
 * (graceful degradation, ServiceConfig::degradePolicy) is likewise
 * bit-identical to runInference(cfg, model, batch, SchedMode::Greedy);
 * degraded results live under a distinct cache key ("<key>|greedy"),
 * though a degraded request is happy to take an already-cached
 * optimal result — better quality at the same (cached, ~zero) cost.
 */

#ifndef SMART_SERVE_SERVICE_HH
#define SMART_SERVE_SERVICE_HH

#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "accel/batch.hh"
#include "common/diskcache.hh"
#include "common/parallel.hh"
#include "common/threadsafety.hh"
#include "serve/estimator.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace smart::serve
{

/**
 * One tenant's SLO policy (ServiceConfig::tenantSlo, keyed on the
 * request tag). Every field falls back to the corresponding global
 * knob, so a table entry only overrides what it sets — the global
 * sloP95Ms / sloAdmissionFactor remain the policy for tenants (and
 * untagged traffic) without an entry.
 */
struct TenantSlo
{
    /**
     * This tenant's p95 end-to-end latency target (ms): drives both
     * SLO-aware admission and the adaptive wave sizing for requests
     * carrying this tag. 0 inherits the global sloP95Ms; a negative
     * value opts the tenant out of any p95 SLO entirely (a lax batch
     * tenant under a strict global default).
     */
    double p95Ms = 0.0;
    /**
     * Admission headroom for this tenant (see sloAdmissionFactor).
     * Negative inherits the global factor; 0 disables hopeless
     * rejection for this tenant only.
     */
    double admissionFactor = -1.0;
    /**
     * Deadline assigned to this tenant's requests submitted without
     * one. 0 assigns none (the global behavior); a positive value is
     * a fixed queue-time budget in ms; a negative value derives the
     * deadline from the cost estimator at submit time — the same
     * wait-plus-service-over-factor formula as
     * Submission::suggestedDeadlineMs — so an interactive tenant's
     * requests expire promptly once the queue outgrows what the
     * estimator believes they can survive, instead of languishing.
     * (An estimator-derived deadline tracks load: while the estimator
     * is cold no deadline is assigned.)
     */
    double defaultDeadlineMs = 0.0;
    /**
     * Quality budget (ms) for this tenant's requests that don't carry
     * their own EvalRequest::maxQualityMs: under degradePolicy Auto,
     * a request whose predicted ILP-path service time exceeds the
     * budget is routed through the greedy scheduler instead. 0
     * inherits the global ServiceConfig::maxQualityMs; negative opts
     * this tenant out of budget-driven degradation.
     */
    double maxQualityMs = 0.0;
};

/**
 * When the service may serve a request through the greedy (anytime)
 * scheduler instead of the ILP. See ServiceConfig::degradePolicy.
 */
enum class DegradePolicy
{
    Off,  //!< Never degrade; hopeless requests are rejected.
    /**
     * Degrade instead of rejecting: a request the estimator would
     * refuse as hopeless (or whose predicted ILP service time blows
     * its quality budget) is served greedy when the estimator
     * predicts the greedy path CAN meet the budget — otherwise it is
     * still rejected (degrading cannot fix a hopeless queue wait).
     */
    Auto,
    Force //!< Every request is served greedy (load-shedding mode).
};

/** DegradePolicy name for logs and tables. */
inline const char *
degradePolicyName(DegradePolicy p)
{
    switch (p) {
      case DegradePolicy::Off:
        return "off";
      case DegradePolicy::Auto:
        return "auto";
      case DegradePolicy::Force:
        return "force";
    }
    return "?";
}

/** Service shape: queue bounds, wave policy, SLO, cache policy. */
struct ServiceConfig
{
    QueueConfig queue; //!< Depth bound + admission policy + quotas.
    /** Most requests one runBatch wave may carry (coalescing cap). */
    std::size_t maxWave = 16;
    /** Adaptive wave sizing never shrinks the cap below this. */
    std::size_t minWave = 1;
    /**
     * How long the dispatcher lingers for more arrivals when fewer
     * than the wave cap requests are queued, so bursts amortize into
     * full waves. 0 dispatches immediately (lowest latency). Under an
     * SLO the effective linger scales with the adaptive wave cap.
     */
    std::chrono::milliseconds linger{0};
    /**
     * Target p95 end-to-end latency (queue + service, ms). When > 0
     * the dispatcher adapts the wave cap between minWave and maxWave:
     * each window of sloWindow completions whose p95 exceeds the SLO
     * halves the cap (and the linger with it, cutting batching delay);
     * a comfortably healthy window (p95 < 80% of the SLO) grows it
     * additively back toward maxWave for better coalescing. 0 keeps
     * the fixed maxWave/linger behavior.
     */
    double sloP95Ms = 0.0;
    /** Completions per adaptation decision when sloP95Ms > 0. */
    std::size_t sloWindow = 32;
    /**
     * SLO-aware admission headroom: a submission is refused with
     * RejectedHopeless when the cost estimator's predicted queue wait
     * exceeds sloAdmissionFactor * deadlineMs (queue deadlines bound
     * waiting only), or predicted wait + service time exceeds
     * sloAdmissionFactor * sloP95Ms. 1.0 rejects exactly at the
     * predicted budget; values < 1 reject earlier, buying headroom
     * for estimation error. Both knobs here are the defaults a
     * tenantSlo entry may override per tag, so the two guarantees
     * that follow hold for tenants WITHOUT an override: 0 disables
     * hopeless rejection entirely, and requests with no deadline
     * under sloP95Ms == 0 are never rejected as hopeless. Nothing is
     * rejected while the estimator is cold (no completed evaluation
     * yet), for any tenant. Rejected
     * requests yield no samples, so an idle service admits every 8th
     * consecutive hopeless rejection as a probe — a stuck-high
     * estimate re-measures and admission self-heals instead of
     * locking a shape out forever. The prediction
     * assumes a cache miss: a would-be cache hit arriving behind a
     * hopeless queue is rejected too — the conservative trade-off for
     * keeping submit() free of the expensive canonical-key hash.
     */
    double sloAdmissionFactor = 1.0;
    /**
     * Per-tenant SLO table, keyed on the request tag. Tenants (and
     * untagged requests) without an entry use the global knobs above;
     * an entry overrides only the fields it sets (see TenantSlo). The
     * adaptive wave sizing then judges each window per tenant against
     * that tenant's own target and shrinks the wave cap when ANY
     * tenant's SLO is violated — the strictest violated tenant drives
     * the decision — while growth requires every SLO-bearing tenant
     * to be comfortably healthy. SLO-aware (hopeless) admission and
     * estimator-driven deadline assignment gate each submission
     * against the submitting tenant's entry.
     */
    std::map<std::string, TenantSlo> tenantSlo;
    bool cacheEnabled = true;
    /**
     * Result-cache entry budget, enforced by per-shard LRU eviction
     * (common/parallel.hh LruCache). 0 means unbounded.
     */
    std::size_t cacheMaxEntries = 4096;
    /**
     * Result-cache byte budget (keys + deep value sizes + node
     * overhead), LRU-enforced like cacheMaxEntries. 0 = unbounded.
     */
    std::size_t cacheMaxBytes = 64ull << 20;
    /**
     * Per-tenant result-cache byte budget, keyed on the request tag:
     * a tenant over budget evicts its own least-recently-used entries
     * first, so one flooding tenant can no longer monopolize the
     * cache the way it can no longer monopolize the queue
     * (QueueConfig::maxPerTenant). Per-tenant occupancy and eviction
     * counters are exported in MetricsSnapshot::tenantCache. A
     * coalesced wave entry is charged to the tenant whose request
     * triggered the evaluation. 0 disables per-tenant budgets.
     */
    std::size_t tenantCacheBytes = 0;
    /** Cache lock granularity; 1 gives a single exact LRU order. */
    std::size_t cacheShards = 16;
    /**
     * Graceful degradation policy (see DegradePolicy): Off preserves
     * the reject-hopeless behavior, Auto converts would-be
     * RejectedHopeless outcomes (and quality-budget overruns) into
     * ServedDegraded greedy-scheduled evaluations, Force routes every
     * request through the greedy path.
     */
    DegradePolicy degradePolicy = DegradePolicy::Off;
    /**
     * Global quality budget (ms): the default TenantSlo::maxQualityMs
     * and EvalRequest::maxQualityMs fall back to. 0 = no budget
     * (degradation then only triggers on hopeless-by-SLO/deadline
     * requests under Auto).
     */
    double maxQualityMs = 0.0;
    /**
     * Path of the persistent L2 schedule cache (common/diskcache.hh).
     * Empty disables it. When set, evaluated results are appended to
     * the on-disk log and L1 misses consult it before evaluating, so
     * a restarted process warm-starts instead of re-solving;
     * hit/miss/corrupt-skipped counters surface in the metrics
     * snapshot.
     */
    std::string diskCachePath;
    /**
     * Request-tracing sample rate: record a full span timeline
     * (submit → admission → queue wait → schedule → execute →
     * complete) for every Nth submission via the process-wide
     * TraceRecorder (common/tracespan.hh). 1 traces every request,
     * 16 one in sixteen; 0 (the default) disarms tracing — the
     * disarmed cost on the submit path is one relaxed atomic load.
     * Note the recorder is process-global (like FaultInjector): the
     * last service constructed with a nonzero rate owns its
     * configuration.
     */
    std::uint64_t traceSampleEvery = 0;
    /** Tracer per-thread ring capacity in events (rounded to 2^k). */
    std::size_t traceRingSlots = 4096;
    /** Most flight-recorder incidents retained (FIFO eviction). */
    std::size_t incidentLogCap = 32;
};

class EvalService
{
  public:
    explicit EvalService(ServiceConfig cfg = {});

    /** Closes the queue and drains every admitted request. */
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Submit one request. The admission decision is synchronous; when
     * admitted, the returned future resolves once the request is
     * evaluated (status Ok), shed, or expired.
     */
    Submission submit(EvalRequest req);

    /**
     * Stop admitting new requests (submit returns RejectedClosed).
     * Already-admitted requests still run to completion.
     */
    void close();

    /**
     * Block until every admitted request has resolved. Does not close
     * the queue; new submissions after drain() are served normally.
     */
    void drain();

    /** Point-in-time metrics. */
    MetricsSnapshot metrics() const;

    /**
     * The flight recorder's incident log as a JSON array (one object
     * per expired / hopeless-rejected / failed sampled request, each
     * carrying the trace's last spans). "[]" when tracing is disarmed
     * or nothing went wrong. See common/tracespan.hh.
     */
    std::string dumpIncidents() const;

    /** The configuration the service was built with. */
    const ServiceConfig &config() const { return cfg_; }

    /** Current adaptive wave cap (== maxWave when no SLO is set). */
    std::size_t waveLimit() const
    {
        // memory_order: relaxed — monitoring read of an independent
        // counter; no other memory is published through it.
        return waveLimit_.load(std::memory_order_relaxed);
    }

    /**
     * The service's cost estimator. Exposed so operators can
     * warm-start a fresh service from a sibling's observed costs (or
     * tests can inject known samples); injected samples fold into the
     * EWMAs exactly like observed ones, and admission decisions pick
     * them up on the next submit.
     */
    CostEstimator &costEstimator() { return estimator_; }

  private:
    void dispatcherLoop();
    /**
     * The one place that retires an admitted request: records the
     * terminal metric for @p r's status, fulfills the promise, then
     * releases the drain count — in that order, so a client that sees
     * the future ready also sees it counted, and drain() returning
     * implies every future is ready.
     */
    void resolve(Pending &&p, EvalResponse &&r);
    /** Resolve a non-Ok terminal state (shed / expired). */
    void finish(Pending &&p, ResponseStatus status);
    /** Drop one request from the drain count (after its promise is set). */
    void releaseDrainSlot();
    /** Evaluate one wave: cache lookups, coalescing, runBatch. */
    void serveWave(std::vector<Pending> &&wave);
    /**
     * One SLO adaptation step (no-op until a full window of Ok
     * completions has accumulated): group the window's latencies by
     * tenant, judge each group against that tenant's effective SLO,
     * and resize the wave cap — any violated tenant (the strictest
     * violated one drives the decision) halves it; growth requires
     * every SLO-bearing tenant comfortably healthy. Called from the
     * dispatcher between waves.
     */
    void adaptWaveLimit();
    /** The linger for the current wave cap (scaled under an SLO). */
    std::chrono::milliseconds effectiveLinger() const;

    /**
     * @p tag's SLO policy with the global-knob fallbacks resolved
     * (see TenantSlo): p95Ms and factor are directly usable (0 means
     * none/disabled), defaultDeadlineMs keeps the table's tri-state.
     */
    struct SloView
    {
        double p95Ms = 0.0;
        double factor = 0.0;
        double defaultDeadlineMs = 0.0;
        double maxQualityMs = 0.0; //!< 0 = no quality budget.
    };
    SloView sloFor(const std::string &tag) const;

    /**
     * Degraded-path twin of hopeless(): would this request still be
     * hopeless if served through the greedy scheduler? Uses the
     * greedy shape EWMA ("<shape>|greedy", optimistically 0 when
     * untracked — see CostEstimator::shapeEstimateMs) for the service
     * term; the queue-wait term is unchanged, because degrading a
     * request cannot make the queue in front of it drain faster.
     */
    bool hopelessWhenDegraded(const std::string &shapeKey,
                              double deadlineMs,
                              std::size_t queueDepth,
                              const SloView &slo) const;

    /**
     * True when the estimator predicts a request of @p shapeKey with
     * @p deadlineMs of queue budget left (<= 0 = none) cannot meet
     * that budget even if admitted now behind @p queueDepth queued
     * requests, judged against @p slo — the submitting tenant's
     * resolved policy (see ServiceConfig::sloAdmissionFactor /
     * tenantSlo). The depth is sampled once by submit() so the
     * verdict and the probe decision built on it agree; the
     * Block-policy post-wait re-check passes the REMAINING deadline
     * budget, not the original one, so time spent blocked counts
     * against the request.
     */
    bool hopeless(const std::string &shapeKey, double deadlineMs,
                  std::size_t queueDepth, const SloView &slo) const;

    /**
     * Estimator-confidence tightening of an admission factor: when
     * the service-time estimate for @p shapeKey carries a wide
     * EWMA-variance interval (volatile predictions — see
     * CostEstimator::estimateInterval), the effective factor shrinks
     * by up to half, so admission under an unreliable estimate buys
     * extra headroom instead of trusting the mean. A tight interval
     * (or a cold/constant-latency estimator) leaves @p factor as is.
     */
    double tightenedFactor(const std::string &shapeKey,
                           double factor) const;

    ServiceConfig cfg_;
    RequestQueue queue_;
    LruCache<accel::InferenceResult> cache_;
    /** Persistent L2 under the in-process cache; null when disabled. */
    std::unique_ptr<DiskCache> diskCache_;
    CostEstimator estimator_;
    ServiceMetrics metrics_;

    Mutex drainMu_;
    std::condition_variable drainCv_;
    /** Admitted, future not yet set. */
    std::uint64_t unresolved_ SMART_GUARDED_BY(drainMu_) = 0;
    std::atomic<std::uint64_t> seq_{0};

    std::atomic<std::size_t> waveLimit_;
    /** Consecutive idle hopeless rejections (probe admission). */
    std::atomic<std::uint32_t> hopelessStreak_{0};
    /** Any p95 SLO configured (global or per-tenant)? Set once. */
    bool sloActive_ = false;
    mutable Mutex sloMu_; //!< Guards the window + tenant rows.
    /** Current adaptation window: (tenant tag, end-to-end ms). */
    std::vector<std::pair<std::string, double>>
        sloLatencies_ SMART_GUARDED_BY(sloMu_);
    /** Windows in which each tenant violated its own SLO. */
    std::map<std::string, std::uint64_t>
        tenantViolatedWindows_ SMART_GUARDED_BY(sloMu_);
    std::atomic<std::uint64_t> sloWindows_{0};
    std::atomic<std::uint64_t> sloViolatedWindows_{0};

    std::thread dispatcher_; //!< Last member: starts fully-constructed.
};

} // namespace smart::serve

#endif // SMART_SERVE_SERVICE_HH
