/**
 * @file
 * Async evaluation service over accel::runBatch — the serving layer of
 * the ROADMAP's north star. Clients submit (configuration, model,
 * batch) requests with priorities and deadlines and get back futures;
 * a dispatcher thread coalesces queued requests into runBatch waves
 * sized by a configurable policy, so concurrent callers share the
 * thread pool the way the figure benches do.
 *
 * Three production behaviors sit between submission and evaluation:
 *
 *  - Admission control: a bounded queue with Reject / Shed / Block
 *    policies (serve/queue.hh). Rejections are reported synchronously
 *    from submit(); shed and expired requests resolve their futures
 *    with the corresponding status — nothing is silently dropped.
 *    SLO-aware admission (serve/estimator.hh) additionally refuses a
 *    request up front (RejectedHopeless) when the predicted queue
 *    wait + service time already exceeds its deadline or the p95 SLO:
 *    doomed work is turned away in microseconds instead of occupying
 *    a queue slot and failing slowly.
 *  - Result caching: a sharded cache keyed on the canonical
 *    accel::requestKey, so repeated sweep points (figure grids, DSE
 *    re-runs) are served without re-evaluation. Identical requests in
 *    the same wave are coalesced into a single evaluation.
 *  - Metrics: per-request latency (p50/p95/p99), throughput, queue
 *    depth, and cache hit rate (serve/metrics.hh), exportable as a
 *    BENCH_micro.json-compatible snapshot.
 *
 * Determinism contract: an admitted request's result is bit-identical
 * to a direct runInference(cfg, model, batch) call — evaluation goes
 * through the same runBatch path, and the cache key covers every
 * result-relevant input byte (see accel/hash.hh).
 */

#ifndef SMART_SERVE_SERVICE_HH
#define SMART_SERVE_SERVICE_HH

#include <chrono>
#include <thread>

#include "accel/batch.hh"
#include "common/parallel.hh"
#include "serve/estimator.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace smart::serve
{

/** Service shape: queue bounds, wave policy, SLO, cache policy. */
struct ServiceConfig
{
    QueueConfig queue; //!< Depth bound + admission policy + quotas.
    /** Most requests one runBatch wave may carry (coalescing cap). */
    std::size_t maxWave = 16;
    /** Adaptive wave sizing never shrinks the cap below this. */
    std::size_t minWave = 1;
    /**
     * How long the dispatcher lingers for more arrivals when fewer
     * than the wave cap requests are queued, so bursts amortize into
     * full waves. 0 dispatches immediately (lowest latency). Under an
     * SLO the effective linger scales with the adaptive wave cap.
     */
    std::chrono::milliseconds linger{0};
    /**
     * Target p95 end-to-end latency (queue + service, ms). When > 0
     * the dispatcher adapts the wave cap between minWave and maxWave:
     * each window of sloWindow completions whose p95 exceeds the SLO
     * halves the cap (and the linger with it, cutting batching delay);
     * a comfortably healthy window (p95 < 80% of the SLO) grows it
     * additively back toward maxWave for better coalescing. 0 keeps
     * the fixed maxWave/linger behavior.
     */
    double sloP95Ms = 0.0;
    /** Completions per adaptation decision when sloP95Ms > 0. */
    std::size_t sloWindow = 32;
    /**
     * SLO-aware admission headroom: a submission is refused with
     * RejectedHopeless when the cost estimator's predicted queue wait
     * exceeds sloAdmissionFactor * deadlineMs (queue deadlines bound
     * waiting only), or predicted wait + service time exceeds
     * sloAdmissionFactor * sloP95Ms. 1.0 rejects exactly at the
     * predicted budget; values < 1 reject earlier, buying headroom
     * for estimation error. 0 disables hopeless rejection entirely.
     * Requests with no deadline under sloP95Ms == 0 are never
     * rejected as hopeless, and neither is anything while the
     * estimator is cold (no completed evaluation yet). Rejected
     * requests yield no samples, so an idle service admits every 8th
     * consecutive hopeless rejection as a probe — a stuck-high
     * estimate re-measures and admission self-heals instead of
     * locking a shape out forever. The prediction
     * assumes a cache miss: a would-be cache hit arriving behind a
     * hopeless queue is rejected too — the conservative trade-off for
     * keeping submit() free of the expensive canonical-key hash.
     */
    double sloAdmissionFactor = 1.0;
    bool cacheEnabled = true;
    /**
     * Result-cache entry budget, enforced by per-shard LRU eviction
     * (common/parallel.hh LruCache). 0 means unbounded.
     */
    std::size_t cacheMaxEntries = 4096;
    /**
     * Result-cache byte budget (keys + deep value sizes + node
     * overhead), LRU-enforced like cacheMaxEntries. 0 = unbounded.
     */
    std::size_t cacheMaxBytes = 64ull << 20;
    /**
     * Per-tenant result-cache byte budget, keyed on the request tag:
     * a tenant over budget evicts its own least-recently-used entries
     * first, so one flooding tenant can no longer monopolize the
     * cache the way it can no longer monopolize the queue
     * (QueueConfig::maxPerTenant). Per-tenant occupancy and eviction
     * counters are exported in MetricsSnapshot::tenantCache. A
     * coalesced wave entry is charged to the tenant whose request
     * triggered the evaluation. 0 disables per-tenant budgets.
     */
    std::size_t tenantCacheBytes = 0;
    /** Cache lock granularity; 1 gives a single exact LRU order. */
    std::size_t cacheShards = 16;
};

class EvalService
{
  public:
    explicit EvalService(ServiceConfig cfg = {});

    /** Closes the queue and drains every admitted request. */
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Submit one request. The admission decision is synchronous; when
     * admitted, the returned future resolves once the request is
     * evaluated (status Ok), shed, or expired.
     */
    Submission submit(EvalRequest req);

    /**
     * Stop admitting new requests (submit returns RejectedClosed).
     * Already-admitted requests still run to completion.
     */
    void close();

    /**
     * Block until every admitted request has resolved. Does not close
     * the queue; new submissions after drain() are served normally.
     */
    void drain();

    /** Point-in-time metrics. */
    MetricsSnapshot metrics() const;

    /** The configuration the service was built with. */
    const ServiceConfig &config() const { return cfg_; }

    /** Current adaptive wave cap (== maxWave when no SLO is set). */
    std::size_t waveLimit() const
    {
        return waveLimit_.load(std::memory_order_relaxed);
    }

  private:
    void dispatcherLoop();
    /**
     * The one place that retires an admitted request: records the
     * terminal metric for @p r's status, fulfills the promise, then
     * releases the drain count — in that order, so a client that sees
     * the future ready also sees it counted, and drain() returning
     * implies every future is ready.
     */
    void resolve(Pending &&p, EvalResponse &&r);
    /** Resolve a non-Ok terminal state (shed / expired). */
    void finish(Pending &&p, ResponseStatus status);
    /** Drop one request from the drain count (after its promise is set). */
    void releaseDrainSlot();
    /** Evaluate one wave: cache lookups, coalescing, runBatch. */
    void serveWave(std::vector<Pending> &&wave);
    /**
     * One SLO adaptation step (no-op until a full window of Ok
     * completions has accumulated): compare the window's p95 against
     * the SLO and resize the wave cap. Called from the dispatcher
     * between waves.
     */
    void adaptWaveLimit();
    /** The linger for the current wave cap (scaled under an SLO). */
    std::chrono::milliseconds effectiveLinger() const;

    /**
     * True when the estimator predicts @p req cannot meet its budget
     * even if admitted now behind @p queueDepth queued requests (see
     * ServiceConfig::sloAdmissionFactor). The depth is sampled once
     * by submit() so the verdict and the probe decision built on it
     * agree.
     */
    bool hopeless(const EvalRequest &req, std::size_t queueDepth) const;

    ServiceConfig cfg_;
    RequestQueue queue_;
    LruCache<accel::InferenceResult> cache_;
    CostEstimator estimator_;
    ServiceMetrics metrics_;

    std::mutex drainMu_;
    std::condition_variable drainCv_;
    std::uint64_t unresolved_ = 0; //!< Admitted, future not yet set.
    std::atomic<std::uint64_t> seq_{0};

    std::atomic<std::size_t> waveLimit_;
    /** Consecutive idle hopeless rejections (probe admission). */
    std::atomic<std::uint32_t> hopelessStreak_{0};
    std::mutex sloMu_;
    std::vector<double> sloLatencies_; //!< Current adaptation window.
    std::atomic<std::uint64_t> sloWindows_{0};
    std::atomic<std::uint64_t> sloViolatedWindows_{0};

    std::thread dispatcher_; //!< Last member: starts fully-constructed.
};

} // namespace smart::serve

#endif // SMART_SERVE_SERVICE_HH
