#include "serve/service.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "accel/hash.hh"
#include "accel/perf.hh"
#include "accel/serdes.hh"
#include "common/arena.hh"
#include "common/logging.hh"
#include "common/taskgraph.hh"
#include "common/tracespan.hh"

namespace smart::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Deep size of a cached result: struct + strings + per-layer rows. */
std::size_t
inferenceResultBytes(const accel::InferenceResult &r)
{
    std::size_t b = sizeof(r) + r.model.size() + r.scheme.size();
    for (const auto &l : r.layers)
        b += sizeof(l) + l.name.size();
    return b;
}

LruCache<accel::InferenceResult>::Config
cacheConfigFor(const ServiceConfig &cfg)
{
    LruCache<accel::InferenceResult>::Config c;
    c.maxEntries = cfg.cacheMaxEntries;
    c.maxBytes = cfg.cacheMaxBytes;
    c.tagBytes = cfg.tenantCacheBytes;
    c.shards = cfg.cacheShards;
    c.valueBytes = inferenceResultBytes;
    return c;
}

/**
 * Every Nth consecutive hopeless rejection on an IDLE queue is
 * admitted anyway, as a probe. Rejected requests produce no samples,
 * so without probes one pathological first measurement (a 10x cold
 * outlier seeding the shape EWMA above the SLO) would lock that shape
 * out forever even while the service sits idle; the probe's real
 * latency refreshes the estimator and admission self-heals. Probes
 * are restricted to an empty queue: there they cost nothing and
 * cannot miss by much, while under load the admitted stream keeps
 * the estimator fresh on its own (no lockout to heal) and a probe
 * would just be a genuinely doomed request.
 */
constexpr std::uint32_t kHopelessProbeInterval = 8;

/** Clamp the wave/SLO knobs into a usable shape once, up front. */
ServiceConfig
normalized(ServiceConfig cfg)
{
    cfg.maxWave = std::max<std::size_t>(1, cfg.maxWave);
    cfg.minWave =
        std::min(std::max<std::size_t>(1, cfg.minWave), cfg.maxWave);
    cfg.sloWindow = std::max<std::size_t>(1, cfg.sloWindow);
    cfg.sloAdmissionFactor = std::max(0.0, cfg.sloAdmissionFactor);
    return cfg;
}

/** Any p95 target at all — global, or any tenant's own? */
bool
anySloConfigured(const ServiceConfig &cfg)
{
    if (cfg.sloP95Ms > 0.0)
        return true;
    for (const auto &[tag, slo] : cfg.tenantSlo)
        if (slo.p95Ms > 0.0)
            return true;
    return false;
}

} // namespace

EvalService::EvalService(ServiceConfig cfg)
    : cfg_(normalized(cfg)), queue_(cfg_.queue),
      cache_(cacheConfigFor(cfg_)),
      // The persistent L2 loads (and, if damaged, self-heals) its
      // on-disk state here, before the dispatcher thread below can
      // consult it — restarts warm-start from the first wave.
      diskCache_(cfg_.diskCachePath.empty()
                     ? nullptr
                     : std::make_unique<DiskCache>(cfg_.diskCachePath)),
      waveLimit_(cfg_.maxWave), sloActive_(anySloConfigured(cfg_)),
      dispatcher_([this]() { dispatcherLoop(); })
{
    // Arm the process-wide tracer (common/tracespan.hh) when this
    // service wants sampling. Safe after the dispatcher started: no
    // sampled request can exist before submit() is callable, and the
    // recorder's configure() is thread-safe. A zero rate leaves the
    // recorder exactly as it was (another service may own it).
    if (cfg_.traceSampleEvery > 0) {
        TraceRecorder::Config tc;
        tc.sampleEvery = cfg_.traceSampleEvery;
        tc.ringSlots = cfg_.traceRingSlots;
        tc.incidentLogCap = cfg_.incidentLogCap;
        TraceRecorder::global().configure(tc);
    }
}

EvalService::~EvalService()
{
    close();
    dispatcher_.join();
}

void
EvalService::close()
{
    queue_.close();
}

void
EvalService::drain()
{
    LockGuard lock(drainMu_);
    // Explicit loop (not a CV predicate lambda) so the analysis sees
    // unresolved_ read under drainMu_.
    while (unresolved_ != 0)
        lock.wait(drainCv_);
}

MetricsSnapshot
EvalService::metrics() const
{
    MetricsSnapshot s =
        metrics_.snapshot(queue_.depth(), queue_.highWater());
    const auto cs = cache_.stats();
    s.cacheEvictions = cs.evictions;
    s.cacheEntries = cs.entries;
    s.cacheBytes = cs.bytes;
    for (const auto &[tag, ts] : cs.tags)
        s.tenantCache.push_back(
            {tag, ts.entries, ts.bytes, ts.evictions});
    // memory_order: relaxed — monitoring reads of independent counters;
    // a snapshot is a statistical view, not a synchronization point.
    s.waveLimit = waveLimit_.load(std::memory_order_relaxed);
    s.sloP95Ms = cfg_.sloP95Ms;
    s.sloWindows = sloWindows_.load(std::memory_order_relaxed);
    s.sloViolatedWindows =
        sloViolatedWindows_.load(std::memory_order_relaxed);
    // Overlay the parts of the per-tenant SLO rows only the service
    // knows: the effective target from the SLO table and the
    // per-tenant violated-window counters from the adaptation loop. A
    // tenant that violated windows without completing a request in
    // the histogram cap still gets a row — violations must never be
    // silently invisible.
    {
        LockGuard lock(sloMu_);
        for (auto &t : s.tenantSlo) {
            t.sloP95Ms = sloFor(t.tag).p95Ms;
            auto it = tenantViolatedWindows_.find(t.tag);
            if (it != tenantViolatedWindows_.end())
                t.violatedWindows = it->second;
        }
        for (const auto &[tag, violated] : tenantViolatedWindows_) {
            const bool present = std::any_of(
                s.tenantSlo.begin(), s.tenantSlo.end(),
                [&](const auto &t) { return t.tag == tag; });
            if (!present) {
                MetricsSnapshot::TenantSloStat ts;
                ts.tag = tag;
                ts.sloP95Ms = sloFor(tag).p95Ms;
                ts.violatedWindows = violated;
                s.tenantSlo.push_back(std::move(ts));
            }
        }
        std::sort(s.tenantSlo.begin(), s.tenantSlo.end(),
                  [](const auto &a, const auto &b) {
                      return a.tag < b.tag;
                  });
    }
    const auto es = estimator_.snapshot();
    s.estServiceMs = es.serviceMs;
    s.estWaveMs = es.waveMs;
    s.estServiceSamples = es.serviceSamples;
    s.estServiceIntervalMs = es.serviceIntervalMs;
    // Per-stage latency breakdown, when this service armed the
    // process-wide tracer (stage histograms are recorder-global; a
    // service that never armed it reports none rather than another
    // service's).
    if (cfg_.traceSampleEvery > 0 &&
        TraceRecorder::global().armed()) {
        for (auto &st : TraceRecorder::global().stageStats())
            s.stages.push_back(
                {std::move(st.name), st.count, st.p50Ms, st.p95Ms});
    }
    if (diskCache_) {
        const auto ds = diskCache_->stats();
        s.l2Hits = ds.hits;
        s.l2Misses = ds.misses;
        s.l2Puts = ds.puts;
        s.l2CorruptSkipped = ds.corruptSkipped;
        s.l2Entries = ds.entries;
    }
    return s;
}

std::string
EvalService::dumpIncidents() const
{
    return TraceRecorder::global().incidentsJson();
}

EvalService::SloView
EvalService::sloFor(const std::string &tag) const
{
    SloView v;
    v.p95Ms = std::max(0.0, cfg_.sloP95Ms);
    v.factor = cfg_.sloAdmissionFactor; // normalized() clamped >= 0
    v.maxQualityMs = std::max(0.0, cfg_.maxQualityMs);
    auto it = cfg_.tenantSlo.find(tag);
    if (it == cfg_.tenantSlo.end())
        return v;
    const TenantSlo &t = it->second;
    if (t.p95Ms != 0.0) // > 0 overrides; < 0 opts out entirely
        v.p95Ms = std::max(0.0, t.p95Ms);
    if (t.admissionFactor >= 0.0) // < 0 inherits; 0 disables
        v.factor = t.admissionFactor;
    if (t.maxQualityMs != 0.0) // > 0 overrides; < 0 opts out
        v.maxQualityMs = std::max(0.0, t.maxQualityMs);
    v.defaultDeadlineMs = t.defaultDeadlineMs;
    return v;
}

double
EvalService::tightenedFactor(const std::string &shapeKey,
                             double factor) const
{
    if (factor <= 0.0)
        return factor;
    const auto [lo, hi] = estimator_.estimateInterval(shapeKey);
    const double halfWidth = (hi - lo) / 2.0;
    const double meanMs = estimator_.estimateServiceMs(shapeKey);
    if (halfWidth <= 0.0 || meanMs <= 0.0)
        return factor;
    // Relative uncertainty, capped at 1: a 2-sigma half-width as
    // large as the mean itself (or larger) halves the factor.
    return factor / (1.0 + std::min(1.0, halfWidth / meanMs));
}

bool
EvalService::hopeless(const std::string &shapeKey, double deadlineMs,
                      std::size_t queueDepth, const SloView &slo) const
{
    if (slo.factor <= 0.0)
        return false;
    const bool hasDeadline = deadlineMs > 0.0;
    if (!hasDeadline && slo.p95Ms <= 0.0)
        return false; // no budget to miss
    const double factor = tightenedFactor(shapeKey, slo.factor);
    const double waitMs = estimator_.estimateQueueWaitMs(queueDepth);
    if (hasDeadline && waitMs > factor * deadlineMs)
        return true; // queue deadlines bound waiting, not service
    if (slo.p95Ms > 0.0) {
        const double serviceMs = estimator_.estimateServiceMs(shapeKey);
        if (waitMs + serviceMs > factor * slo.p95Ms)
            return true;
    }
    return false;
}

bool
EvalService::hopelessWhenDegraded(const std::string &shapeKey,
                                  double deadlineMs,
                                  std::size_t queueDepth,
                                  const SloView &slo) const
{
    if (slo.factor <= 0.0)
        return false;
    const bool hasDeadline = deadlineMs > 0.0;
    if (!hasDeadline && slo.p95Ms <= 0.0)
        return false; // no budget to miss
    // Confidence-tightened like hopeless(), but against the greedy
    // twin's own interval — the degraded path's volatility is its own.
    const double factor =
        tightenedFactor(shapeKey + "|greedy", slo.factor);
    const double waitMs = estimator_.estimateQueueWaitMs(queueDepth);
    // Degrading cannot make the queue ahead drain faster: a request
    // doomed by waiting alone is doomed on either path.
    if (hasDeadline && waitMs > factor * deadlineMs)
        return true;
    if (slo.p95Ms > 0.0) {
        // Greedy-path service estimate: the shape's own "|greedy"
        // EWMA, optimistically 0 when untracked (see
        // CostEstimator::shapeEstimateMs) — a cold degraded path is
        // given the benefit of the doubt rather than inheriting the
        // ILP-dominated global average it exists to undercut.
        const double serviceMs =
            estimator_.shapeEstimateMs(shapeKey + "|greedy");
        if (waitMs + serviceMs > factor * slo.p95Ms)
            return true;
    }
    return false;
}

Submission
EvalService::submit(EvalRequest req)
{
    metrics_.recordSubmitted();

    // Sampling decision for this submission (common/tracespan.hh).
    // Disarmed (traceSampleEvery == 0) the gate is the plain config
    // compare alone; armed, startTrace() is a relaxed load plus a
    // relaxed fetch_add. traceTag is only copied for sampled requests
    // — the flight recorder needs the tenant tag after req is moved.
    const std::uint64_t traceId = cfg_.traceSampleEvery > 0
                                      ? TraceRecorder::global().startTrace()
                                      : 0;
    const std::string traceTag = traceId ? req.tag : std::string();
    ScopedSpan submitSpan(traceId, "submit");

    // SLO-aware admission, judged against the submitting tenant's
    // resolved SLO policy (sloFor: per-tag table entry, global knobs
    // as fallback): refuse work the estimator predicts cannot meet
    // its deadline/SLO even if admitted right now — before the
    // request costs a queue slot, a drain slot, or (under Block) a
    // blocked submitter. Decided from cheap O(1) reads (queue depth,
    // EWMAs, the coarse shape key); the expensive canonical key is
    // still only computed at dispatch. A closed service reports
    // RejectedClosed, never RejectedHopeless — shutdown must stay
    // distinguishable from load rejection (clients back off
    // differently) — hence the closed() guard. The depth is sampled
    // once, so the deadline assignment, the hopeless verdict, and the
    // probe decision below are all judged against the same queue
    // state.
    const std::uint64_t estimateBegin =
        traceId ? TraceRecorder::nowNs() : 0;
    const SloView slo = sloFor(req.tag);
    // Resolved quality budget (graceful degradation, policy Auto):
    // the request's own maxQualityMs when positive, none when
    // negative, else the tenant/global budget from the SLO table.
    const double qualityBudget =
        req.maxQualityMs > 0.0
            ? req.maxQualityMs
            : (req.maxQualityMs < 0.0 ? 0.0 : slo.maxQualityMs);
    // The coarse shape key feeds the hopeless gate, the deadline
    // suggestion, the deadline default, and the quality-budget gate;
    // compute it once, and only when some SLO machinery can actually
    // consume it — a service with no SLO, no deadline, and no tenant
    // default keeps the zero-allocation submit path. (It is the cheap
    // key either way — the expensive canonical requestKey still waits
    // for dispatch.)
    const bool needShapeKey =
        slo.defaultDeadlineMs != 0.0 ||
        (slo.factor > 0.0 &&
         (slo.p95Ms > 0.0 || req.deadlineMs > 0.0)) ||
        (cfg_.degradePolicy == DegradePolicy::Auto &&
         qualityBudget > 0.0);
    const std::string shapeKey =
        needShapeKey ? accel::requestShapeKey(req.model, req.batch)
                     : std::string();
    const std::size_t depthNow = queue_.depth();
    const bool isClosed = queue_.closed();

    // Estimator-driven deadline assignment: a request submitted
    // without a deadline inherits its tenant's default — fixed, or
    // derived from the cost estimator's current prediction (see
    // TenantSlo::defaultDeadlineMs). Assigned before the hopeless
    // gate, so an inherited deadline is enforced exactly like a
    // client-provided one.
    if (!isClosed && req.deadlineMs <= 0.0 &&
        slo.defaultDeadlineMs != 0.0) {
        req.deadlineMs = slo.defaultDeadlineMs > 0.0
                             ? slo.defaultDeadlineMs
                             : estimator_.suggestDeadlineMs(
                                   shapeKey, depthNow, slo.factor);
    }

    // A hopeless rejection always carries the deadline a resubmission
    // could meet (see Submission::suggestedDeadlineMs) instead of
    // leaving the client to blind-retry; shared by the submit-time
    // gate and the Block post-wait re-check below.
    auto hopelessRejection = [&](std::size_t depth) {
        Submission rejected{Admission::RejectedHopeless,
                            std::future<EvalResponse>()};
        rejected.suggestedDeadlineMs =
            estimator_.suggestDeadlineMs(shapeKey, depth, slo.factor);
        if (traceId) {
            auto &rec = TraceRecorder::global();
            rec.instant(traceId, "admission",
                        static_cast<std::int64_t>(
                            Admission::RejectedHopeless),
                        "verdict");
            rec.recordIncident(traceId, "rejected_hopeless", 0,
                               traceTag);
        }
        return rejected;
    };

    // Graceful degradation decision (see DegradePolicy): Force routes
    // every request through the greedy scheduler; Auto degrades one
    // whose predicted ILP-path service time exceeds its resolved
    // quality budget. Decided before the hopeless gate so the gate
    // judges the path the request will actually take.
    bool degrade = false;
    if (!isClosed && cfg_.degradePolicy != DegradePolicy::Off) {
        if (cfg_.degradePolicy == DegradePolicy::Force)
            degrade = true;
        else if (qualityBudget > 0.0 &&
                 estimator_.estimateServiceMs(shapeKey) > qualityBudget)
            degrade = true;
    }

    bool doomed =
        !isClosed &&
        (degrade ? hopelessWhenDegraded(shapeKey, req.deadlineMs,
                                        depthNow, slo)
                 : hopeless(shapeKey, req.deadlineMs, depthNow, slo));
    // Anytime-scheduling rescue: a request the ILP path cannot serve
    // in time is re-routed through the greedy path instead of being
    // turned away, when that path is predicted to make the budget
    // (degradePolicy Auto; Off keeps the strict reject behavior).
    if (doomed && !degrade &&
        cfg_.degradePolicy == DegradePolicy::Auto &&
        !hopelessWhenDegraded(shapeKey, req.deadlineMs, depthNow,
                              slo)) {
        degrade = true;
        doomed = false;
    }
    // The estimate/admission-decision region: tenant policy resolve,
    // deadline assignment, degrade decision, hopeless gate.
    if (traceId)
        TraceRecorder::global().endSpan(traceId, "estimate",
                                        estimateBegin,
                                        static_cast<std::int64_t>(depthNow),
                                        "queue_depth");
    if (doomed) {
        // Probe admission (see kHopelessProbeInterval): the streak
        // only advances — and a probe only fires — when the queue is
        // idle, so burst rejections under load stay rejections.
        // memory_order: relaxed — the streak is an advisory heuristic
        // counter; a racy read admits (or skips) one probe early, which
        // the self-healing design tolerates by construction.
        const bool probe =
            depthNow == 0 &&
            hopelessStreak_.fetch_add(1, std::memory_order_relaxed) +
                    1 >=
                kHopelessProbeInterval;
        if (!probe) {
            metrics_.recordRejectedHopeless();
            return hopelessRejection(depthNow);
        }
        hopelessStreak_.store(0, std::memory_order_relaxed);
    } else {
        hopelessStreak_.store(0, std::memory_order_relaxed);
    }

    Pending p;
    p.submitTime = Clock::now();
    p.deadline =
        req.deadlineMs > 0.0
            ? p.submitTime +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          req.deadlineMs))
            : Clock::time_point::max();
    // memory_order: relaxed — seq_ only needs uniqueness/monotonicity
    // of the returned values, not ordering of surrounding memory.
    p.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    p.degrade = degrade;
    p.traceId = traceId;
    // The canonical key is deliberately NOT computed here: it is the
    // expensive part of submission and only dispatch needs it, so a
    // rejected request costs almost nothing (see serveWave).
    p.req = std::move(req);
    std::future<EvalResponse> fut = p.promise.get_future();

    // Admission is counted (and the drain slot taken) before the push
    // publishes the request: once the dispatcher can resolve it, it is
    // already admitted in the metrics, so a concurrent snapshot never
    // shows completed > admitted. Both are rolled back on rejection.
    metrics_.recordAdmitted();
    {
        LockGuard lock(drainMu_);
        ++unresolved_;
    }
    // Under Block, the hopeless verdict above was judged against the
    // queue as it stood before any wait; if the push actually blocks,
    // the queue re-judges the request against the state it wakes to —
    // fresh depth, fresh EWMAs, and crucially the REMAINING deadline
    // budget (the time spent blocked already burned part of it; a
    // request whose deadline passed while it slept is refused here
    // instead of occupying a slot just to expire). The callback runs
    // under the queue lock and only reads leaf-locked estimator
    // state. It is built only under the Block policy — the only
    // policy that can wait — and only when there is a budget the
    // re-check could find missed: a p95 target, or an (possibly
    // tenant-default-assigned) deadline. A tenant that opted out of
    // hopeless rejection (slo.factor == 0) skips it like every other
    // hopeless gate, and the common Reject/Shed submit path stays
    // free of the std::function allocation entirely.
    RequestQueue::DoomedAfterWait doomedAfterWait;
    const bool wantHopelessRecheck =
        slo.factor > 0.0 &&
        (slo.p95Ms > 0.0 || p.deadline != Clock::time_point::max());
    const bool wantQualityRecheck =
        cfg_.degradePolicy == DegradePolicy::Auto && qualityBudget > 0.0;
    if (cfg_.queue.policy == AdmissionPolicy::Block &&
        (wantHopelessRecheck || wantQualityRecheck)) {
        doomedAfterWait =
            [this, slo, shapeKey, qualityBudget, wantHopelessRecheck](
                const Pending &pending,
                std::size_t depth) -> RequestQueue::WaitVerdict {
            using Verdict = RequestQueue::WaitVerdict;
            const auto now = Clock::now();
            double leftMs = 0.0; // no deadline
            if (pending.deadline != Clock::time_point::max()) {
                leftMs = msBetween(now, pending.deadline);
                if (leftMs <= 0.0)
                    return Verdict::Reject; // expired while blocked
            }
            // The p95 budget is end-to-end from submit, so the time
            // already spent blocked has been spent from it too:
            // doomed when elapsed + wait + service > factor * p95,
            // expressed by shrinking the budget handed to the gate
            // (elapsed / factor, since the gate scales the budget by
            // factor). A budget fully burned while blocked is doomed
            // outright — degrading cannot refund spent wall time.
            SloView left = slo;
            if (left.p95Ms > 0.0 && left.factor > 0.0) {
                left.p95Ms -=
                    msBetween(pending.submitTime, now) / left.factor;
                if (left.p95Ms <= 0.0)
                    return Verdict::Reject;
            }
            // A request already on the greedy path is never degraded
            // again — the re-judge either confirms it or refuses it.
            const bool canDegrade =
                cfg_.degradePolicy == DegradePolicy::Auto &&
                !pending.degrade;
            if (wantHopelessRecheck) {
                const bool stillDoomed =
                    pending.degrade
                        ? hopelessWhenDegraded(shapeKey, leftMs, depth,
                                               left)
                        : hopeless(shapeKey, leftMs, depth, left);
                if (stillDoomed) {
                    if (canDegrade &&
                        !hopelessWhenDegraded(shapeKey, leftMs, depth,
                                              left))
                        return Verdict::Degrade;
                    return Verdict::Reject;
                }
            }
            // Quality-budget re-judge: the estimates moved while the
            // submitter slept; a request now predicted past its
            // quality budget joins the greedy path instead of
            // blocking on toward a budget it will miss.
            if (canDegrade && qualityBudget > 0.0 &&
                estimator_.estimateServiceMs(shapeKey) > qualityBudget)
                return Verdict::Degrade;
            return Verdict::Admit;
        };
    }
    auto pushed = queue_.push(std::move(p), doomedAfterWait);
    if (pushed.admission != Admission::Admitted) {
        if (pushed.admission == Admission::RejectedHopeless) {
            metrics_.rollbackAdmittedToHopeless();
            releaseDrainSlot();
            return hopelessRejection(queue_.depth());
        }
        metrics_.rollbackAdmittedToRejected();
        releaseDrainSlot();
        if (traceId)
            TraceRecorder::global().instant(
                traceId, "admission",
                static_cast<std::int64_t>(pushed.admission), "verdict");
        return {pushed.admission, std::future<EvalResponse>()};
    }
    if (pushed.shed)
        finish(std::move(*pushed.shed), ResponseStatus::Shed);
    // PushResult::degraded echoes Pending::degrade — set above, or by
    // a WaitVerdict::Degrade re-judge inside the blocked push — so
    // the caller learns its request took the anytime path.
    const Admission verdict = pushed.degraded
                                  ? Admission::ServedDegraded
                                  : Admission::Admitted;
    if (traceId)
        TraceRecorder::global().instant(
            traceId, "admission", static_cast<std::int64_t>(verdict),
            "verdict");
    return {verdict, std::move(fut)};
}

void
EvalService::resolve(Pending &&p, EvalResponse &&r)
{
    switch (r.status) {
      case ResponseStatus::Ok:
        metrics_.recordCompleted(r.totalMs, r.cacheHit, r.coalesced,
                                 r.degraded, r.tag);
        if (sloActive_) {
            LockGuard lock(sloMu_);
            sloLatencies_.emplace_back(r.tag, r.totalMs);
        }
        break;
      case ResponseStatus::Shed:
        metrics_.recordShed();
        break;
      case ResponseStatus::Expired:
        metrics_.recordExpired();
        break;
    }
    p.promise.set_value(std::move(r));
    releaseDrainSlot();
}

void
EvalService::releaseDrainSlot()
{
    {
        LockGuard lock(drainMu_);
        --unresolved_;
    }
    drainCv_.notify_all();
}

void
EvalService::finish(Pending &&p, ResponseStatus status)
{
    smart_assert(status != ResponseStatus::Ok,
                 "finish() is for terminal non-Ok states");
    const auto now = Clock::now();
    if (p.traceId) {
        auto &rec = TraceRecorder::global();
        rec.instant(p.traceId,
                    status == ResponseStatus::Expired ? "expired"
                                                      : "shed");
        // Flight recorder: an expired sampled request is an incident
        // worth forensics (where did its budget go?); a shed one was
        // displaced by policy, not lost to latency.
        if (status == ResponseStatus::Expired)
            rec.recordIncident(p.traceId, "expired", p.digest,
                               p.req.tag);
    }
    EvalResponse r;
    r.status = status;
    r.queueMs = r.totalMs = msBetween(p.submitTime, now);
    r.digest = p.digest;
    r.traceId = p.traceId;
    r.tag = std::move(p.req.tag);
    resolve(std::move(p), std::move(r));
}

std::chrono::milliseconds
EvalService::effectiveLinger() const
{
    if (!sloActive_ || cfg_.linger.count() == 0)
        return cfg_.linger;
    // Scale the batching delay with the adaptive cap: a halved wave
    // limit halves the time requests wait for wave-mates. Floored at
    // 1 ms so a short configured linger degrades to minimal
    // coalescing rather than none (integer division would otherwise
    // zero it on the first halving).
    // memory_order: relaxed — the cap is an independent tuning knob; a
    // stale read just sizes one linger from the previous window.
    const auto cap = waveLimit_.load(std::memory_order_relaxed);
    return std::chrono::milliseconds(
        std::max<long long>(1, static_cast<long long>(cfg_.linger.count()) *
                                   static_cast<long long>(cap) /
                                   static_cast<long long>(cfg_.maxWave)));
}

namespace
{

/** Nearest-rank p95 of @p xs (destructive); NaN-safe via caller. */
double
p95Of(std::vector<double> &xs)
{
    const std::size_t rank = std::min(
        xs.size() - 1,
        static_cast<std::size_t>(std::ceil(0.95 * xs.size())) - 1);
    std::nth_element(xs.begin(),
                     xs.begin() + static_cast<std::ptrdiff_t>(rank),
                     xs.end());
    return xs[rank];
}

} // namespace

void
EvalService::adaptWaveLimit()
{
    if (!sloActive_)
        return;
    std::vector<std::pair<std::string, double>> window;
    {
        LockGuard lock(sloMu_);
        if (sloLatencies_.size() < cfg_.sloWindow)
            return;
        window.swap(sloLatencies_);
    }
    if (window.empty())
        return; // defensive: an empty window carries no decision

    // Group the window by SLO policy and judge each group against
    // its own effective target. Tenants with their own tenantSlo
    // entry get their own group; everyone else — untagged traffic
    // and tenants inheriting the global target — pools into one
    // group judged against the global SLO, exactly the pre-tenant
    // pooled-window behavior (so many small tags sharing the global
    // target can never starve adaptation of samples). The decision
    // is driven by the strictest violated group: ANY violated group
    // halves the cap — a latency-insensitive batch tenant's
    // comfortable p95 must never average away an interactive
    // tenant's violation — while growth requires every SLO-bearing
    // group comfortably healthy (p95 under 80% of its own target).
    // Per-tenant groups smaller than a handful of samples carry no
    // stable p95 (a lone scheduling outlier from a 3% tenant must
    // not halve the cap for everyone), so they are skipped; a sub-4
    // sloWindow lowers the bar with it, and the pooled group — the
    // legacy judgment — is exempt.
    const std::size_t minGroup =
        std::min<std::size_t>(4, cfg_.sloWindow);
    std::map<std::string, std::vector<double>> groups;
    for (auto &[tag, ms] : window) {
        // Own group only for tenants that set their own p95 (> 0
        // overrides, < 0 opts out — its group is then skipped as
        // target-less); an entry that merely tunes the admission
        // factor or default deadline still inherits the global
        // target and pools with everyone else.
        const auto it = cfg_.tenantSlo.find(tag);
        const bool ownTarget =
            it != cfg_.tenantSlo.end() && it->second.p95Ms != 0.0;
        groups[ownTarget ? tag : std::string()].push_back(ms);
    }
    bool judged = false;     //!< Any group carried an SLO verdict.
    bool violated = false;   //!< Some tenant over its own target.
    bool comfortable = true; //!< Every judged group under 80%.
    std::vector<std::string> violatedTags;
    for (auto &[tag, xs] : groups) {
        const bool pooled = tag.empty();
        if (!pooled && xs.size() < minGroup)
            continue; // too few samples for a stable verdict
        const double slo = sloFor(tag).p95Ms;
        if (slo <= 0.0)
            continue; // no target for this tenant: no verdict
        const double p95 = p95Of(xs);
        if (!std::isfinite(p95))
            continue; // a NaN p95 is neither healthy nor violated
        judged = true;
        if (p95 > slo) {
            violated = true;
            // Untagged traffic has no tenant row; its violations are
            // visible in the global sloViolatedWindows counter.
            if (!tag.empty())
                violatedTags.push_back(tag);
        } else if (p95 >= 0.8 * slo) {
            comfortable = false;
        }
    }
    if (!judged)
        return; // a window of opted-out tenants decides nothing

    // memory_order: relaxed — window/violation counters and the wave
    // cap are independent statistics; only the dispatcher writes the
    // cap, so the load-modify-store below has no concurrent writer.
    sloWindows_.fetch_add(1, std::memory_order_relaxed);
    std::size_t cap = waveLimit_.load(std::memory_order_relaxed);
    if (violated) {
        // Violated: halve the cap (multiplicative decrease) so queued
        // requests stop paying for large waves and long lingers.
        sloViolatedWindows_.fetch_add(1, std::memory_order_relaxed);
        {
            // Tags are client-controlled, so the per-tenant counter
            // map is bounded; past the cap, violations still count in
            // the global sloViolatedWindows_ above.
            constexpr std::size_t kMaxViolatedTagRows = 256;
            LockGuard lock(sloMu_);
            for (const auto &tag : violatedTags)
                if (tenantViolatedWindows_.count(tag) > 0 ||
                    tenantViolatedWindows_.size() < kMaxViolatedTagRows)
                    ++tenantViolatedWindows_[tag];
        }
        cap = std::max(cfg_.minWave, cap / 2);
    } else if (comfortable) {
        // Comfortably healthy across every judged tenant: grow
        // additively back toward maxWave for better coalescing.
        cap = std::min(cfg_.maxWave, cap + 1);
    }
    // memory_order: relaxed — readers (dispatcher, snapshots, linger
    // scaling) tolerate a stale cap for one wave by design.
    waveLimit_.store(cap, std::memory_order_relaxed);
}

void
EvalService::dispatcherLoop()
{
    while (true) {
        // memory_order: relaxed — the adaptive cap is written by this
        // same thread (adaptWaveLimit); no cross-thread ordering needed.
        auto wave =
            queue_.popWave(waveLimit_.load(std::memory_order_relaxed),
                           effectiveLinger());
        for (auto &p : wave.expired)
            finish(std::move(p), ResponseStatus::Expired);
        if (!wave.items.empty())
            serveWave(std::move(wave.items));
        else if (wave.expired.empty())
            break; // closed and drained
        adaptWaveLimit();
    }
}

void
EvalService::serveWave(std::vector<Pending> &&wave)
{
    const auto dispatch = Clock::now();

    // Requests whose key already has a ready cache entry complete
    // immediately; the rest are grouped by key so identical requests
    // in one wave share a single evaluation (coalescing).
    struct Group
    {
        /** Cache/coalescing key: the canonical key, or its "|greedy"
         *  twin for degraded groups. View into the wave key arena. */
        std::string_view evalKey;
        std::vector<Pending> members;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string_view, std::size_t> group_of;

    auto resolveOk = [&](Pending &&p, const accel::InferenceResult &res,
                         bool cache_hit, bool coalesced) {
        const auto now = Clock::now();
        // One "serve" span per sampled request: wave dispatch →
        // resolution. Together with queue_wait (submit → dispatch,
        // closed in popWave) the two spans partition the request's
        // end-to-end time.
        if (p.traceId) {
            const auto ns = [](Clock::time_point t) {
                return static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(t.time_since_epoch())
                        .count());
            };
            TraceRecorder::global().recordSpan(
                p.traceId, "serve", ns(dispatch), ns(now),
                cache_hit ? 1 : 0, "cache_hit");
        }
        EvalResponse r;
        r.status = ResponseStatus::Ok;
        r.result = res;
        r.cacheHit = cache_hit;
        r.coalesced = coalesced;
        // Quality surfacing: a degrade-marked request only reports
        // degraded when the result it got actually came off the
        // greedy path — one satisfied by a cached optimal result was
        // served at full quality and must not inflate the degraded
        // counters.
        r.quality = cache_hit ? compiler::Quality::CacheHit
                              : res.schedQuality;
        r.gapBound = res.schedGapBound;
        r.degraded = p.degrade &&
                     res.schedQuality == compiler::Quality::Greedy;
        r.queueMs = msBetween(p.submitTime, dispatch);
        r.serviceMs = msBetween(dispatch, now);
        r.totalMs = msBetween(p.submitTime, now);
        r.digest = p.digest;
        r.traceId = p.traceId;
        r.tag = std::move(p.req.tag);
        resolve(std::move(p), std::move(r));
    };

    // A degrade-marked request is happily served by a cached OPTIMAL
    // result — strictly better quality at cache-hit cost — so its
    // lookup tries the optimal key first, then its own "|greedy"
    // twin. The reverse never holds: degraded results live under the
    // suffixed key and are invisible to full-quality requests. An L1
    // miss consults the persistent L2 (same key order); a decodable
    // L2 hit is promoted into the in-process cache under the key it
    // was found with.
    auto cacheLookup = [&](const Pending &p, std::string_view evalKey,
                           accel::InferenceResult &out) {
        auto &rec = TraceRecorder::global();
        if (cache_.get(p.key, out) ||
            (p.degrade && cache_.get(evalKey, out))) {
            rec.instant(p.traceId, "schedule_cache_hit");
            return true;
        }
        if (!diskCache_)
            return false;
        const std::string_view keys[2] = {
            p.key, p.degrade ? evalKey : std::string_view()};
        for (std::string_view k : keys) {
            if (k.empty())
                continue;
            std::string bytes;
            // The persistent L2 is a cold-path file store; it keeps
            // its std::string API and pays one key copy per probe.
            if (diskCache_->get(std::string(k), bytes) &&
                accel::deserializeInferenceResult(bytes, out)) {
                cache_.put(k, out, p.req.tag);
                rec.instant(p.traceId, "schedule_l2_hit");
                return true;
            }
        }
        return false;
    };

    // One wave-scoped arena owns every request's canonical key bytes:
    // the key and its "|greedy" degraded twin are interned as a single
    // contiguous block per request, so Pending::key, the eval key, and
    // the coalescing-map keys are all views of the same bytes — one
    // bump allocation per request where key construction previously
    // cost a handful of string allocations (ROADMAP hot-path (c)).
    // The scratch build buffer is reused across the wave, so its
    // growth amortizes to zero steady-state allocations.
    static constexpr std::string_view kGreedySuffix = "|greedy";
    Arena keyArena;
    std::string keyScratch;

    for (auto &p : wave) {
        keyScratch.clear();
        accel::appendRequestKey(keyScratch, p.req.cfg, p.req.model,
                                p.req.batch);
        const std::string_view block =
            keyArena.intern2(keyScratch, kGreedySuffix);
        p.key = block.substr(0, keyScratch.size());
        p.digest = accel::requestDigest(p.key);
        // Degraded evaluations are keyed (L1, L2, and coalescing
        // groups) under the canonical key plus "|greedy", so the two
        // paths never collide in the cache or share a wave item.
        const std::string_view evalKey = p.degrade ? block : p.key;
        accel::InferenceResult cached;
        if (cfg_.cacheEnabled && cacheLookup(p, evalKey, cached)) {
            resolveOk(std::move(p), cached, /*cache_hit=*/true,
                      /*coalesced=*/false);
            continue;
        }
        auto [it, fresh] = group_of.emplace(evalKey, groups.size());
        if (fresh) {
            groups.emplace_back();
            groups.back().evalKey = evalKey;
        }
        groups[it->second].members.push_back(std::move(p));
    }
    if (groups.empty())
        return;

    metrics_.recordWave(groups.size());

    try {
        // Each coalescing group is one stealable task on the global
        // work-stealing scheduler. The dispatcher joins by helping
        // (TaskGroup::wait executes pending tasks instead of
        // sleeping), so it contributes a lane exactly like the old
        // pool-parallel runBatch — and nested per-layer pFor inside
        // runInference now feeds the same deques instead of running
        // serially. Fulfilment is race-free without extra locking:
        // group membership is disjoint, and put() enforces the LRU
        // budget per shard, so a full cache evicts its coldest
        // entries instead of wiping concurrent tasks' inserts.
        const auto waveStart = Clock::now();
        TaskGroup tasks;
        for (auto &g : groups) {
            tasks.run([&]() {
                // The evaluation runs under the group head's trace id
                // (the request that triggered it); a sampled member
                // coalesced behind an unsampled head still gets its
                // serve span, just not the schedule/execute
                // internals. The scheduler carries the spawner's
                // ambient trace to the stealing thread; the explicit
                // scope here narrows it to this group's head.
                const Pending &head = g.members.front();
                TraceRecorder::TraceScope trace(head.traceId);
                const accel::InferenceResult res = accel::runInference(
                    head.req.cfg, head.req.model, head.req.batch,
                    head.degrade ? accel::SchedMode::Greedy
                                 : accel::SchedMode::Ilp);
                // Cache ownership and the cost sample both follow the
                // group head; read its fields before resolveOk moves
                // them into the response. Degraded groups write under
                // the "|greedy" key and feed the greedy shape EWMA,
                // keeping both paths' cost models separate.
                if (cfg_.cacheEnabled) {
                    cache_.put(g.evalKey, res, head.req.tag);
                    if (diskCache_)
                        diskCache_->put(
                            std::string(g.evalKey),
                            accel::serializeInferenceResult(res));
                }
                estimator_.recordService(
                    accel::requestShapeKey(head.req.model,
                                           head.req.batch) +
                        (head.degrade ? "|greedy" : ""),
                    msBetween(dispatch, Clock::now()));
                bool first = true;
                for (auto &p : g.members) {
                    resolveOk(std::move(p), res, /*cache_hit=*/false,
                              /*coalesced=*/!first);
                    first = false;
                }
            });
        }
        tasks.wait();
        estimator_.recordWave(msBetween(waveStart, Clock::now()),
                              groups.size());
    } catch (...) {
        // A failed wave must still resolve every future: promises the
        // hook already satisfied throw future_error and are skipped.
        // Each exception-resolved request is counted as failed so the
        // admitted == completed + shed + expired + failed accounting
        // stays closed.
        for (auto &g : groups) {
            for (auto &p : g.members) {
                try {
                    p.promise.set_exception(std::current_exception());
                } catch (const std::future_error &) {
                    continue;
                }
                // Flight recorder: a failed evaluation (including
                // FaultInjector-style injected faults) snapshots the
                // sampled request's span history for forensics.
                if (p.traceId)
                    TraceRecorder::global().recordIncident(
                        p.traceId, "wave_failed", p.digest, p.req.tag);
                metrics_.recordFailed();
                releaseDrainSlot();
            }
        }
    }
}

} // namespace smart::serve
