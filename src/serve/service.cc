#include "serve/service.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "accel/hash.hh"
#include "common/logging.hh"

namespace smart::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Deep size of a cached result: struct + strings + per-layer rows. */
std::size_t
inferenceResultBytes(const accel::InferenceResult &r)
{
    std::size_t b = sizeof(r) + r.model.size() + r.scheme.size();
    for (const auto &l : r.layers)
        b += sizeof(l) + l.name.size();
    return b;
}

LruCache<accel::InferenceResult>::Config
cacheConfigFor(const ServiceConfig &cfg)
{
    LruCache<accel::InferenceResult>::Config c;
    c.maxEntries = cfg.cacheMaxEntries;
    c.maxBytes = cfg.cacheMaxBytes;
    c.tagBytes = cfg.tenantCacheBytes;
    c.shards = cfg.cacheShards;
    c.valueBytes = inferenceResultBytes;
    return c;
}

/**
 * Every Nth consecutive hopeless rejection on an IDLE queue is
 * admitted anyway, as a probe. Rejected requests produce no samples,
 * so without probes one pathological first measurement (a 10x cold
 * outlier seeding the shape EWMA above the SLO) would lock that shape
 * out forever even while the service sits idle; the probe's real
 * latency refreshes the estimator and admission self-heals. Probes
 * are restricted to an empty queue: there they cost nothing and
 * cannot miss by much, while under load the admitted stream keeps
 * the estimator fresh on its own (no lockout to heal) and a probe
 * would just be a genuinely doomed request.
 */
constexpr std::uint32_t kHopelessProbeInterval = 8;

/** Clamp the wave/SLO knobs into a usable shape once, up front. */
ServiceConfig
normalized(ServiceConfig cfg)
{
    cfg.maxWave = std::max<std::size_t>(1, cfg.maxWave);
    cfg.minWave =
        std::min(std::max<std::size_t>(1, cfg.minWave), cfg.maxWave);
    cfg.sloWindow = std::max<std::size_t>(1, cfg.sloWindow);
    cfg.sloAdmissionFactor = std::max(0.0, cfg.sloAdmissionFactor);
    return cfg;
}

} // namespace

EvalService::EvalService(ServiceConfig cfg)
    : cfg_(normalized(cfg)), queue_(cfg_.queue),
      cache_(cacheConfigFor(cfg_)), waveLimit_(cfg_.maxWave),
      dispatcher_([this]() { dispatcherLoop(); })
{}

EvalService::~EvalService()
{
    close();
    dispatcher_.join();
}

void
EvalService::close()
{
    queue_.close();
}

void
EvalService::drain()
{
    std::unique_lock<std::mutex> lock(drainMu_);
    drainCv_.wait(lock, [&]() { return unresolved_ == 0; });
}

MetricsSnapshot
EvalService::metrics() const
{
    MetricsSnapshot s =
        metrics_.snapshot(queue_.depth(), queue_.highWater());
    const auto cs = cache_.stats();
    s.cacheEvictions = cs.evictions;
    s.cacheEntries = cs.entries;
    s.cacheBytes = cs.bytes;
    for (const auto &[tag, ts] : cs.tags)
        s.tenantCache.push_back(
            {tag, ts.entries, ts.bytes, ts.evictions});
    s.waveLimit = waveLimit_.load(std::memory_order_relaxed);
    s.sloP95Ms = cfg_.sloP95Ms;
    s.sloWindows = sloWindows_.load(std::memory_order_relaxed);
    s.sloViolatedWindows =
        sloViolatedWindows_.load(std::memory_order_relaxed);
    const auto es = estimator_.snapshot();
    s.estServiceMs = es.serviceMs;
    s.estWaveMs = es.waveMs;
    s.estServiceSamples = es.serviceSamples;
    return s;
}

bool
EvalService::hopeless(const EvalRequest &req,
                      std::size_t queueDepth) const
{
    if (cfg_.sloAdmissionFactor <= 0.0)
        return false;
    const bool hasDeadline = req.deadlineMs > 0.0;
    if (!hasDeadline && cfg_.sloP95Ms <= 0.0)
        return false; // no budget to miss
    const double waitMs = estimator_.estimateQueueWaitMs(queueDepth);
    if (hasDeadline &&
        waitMs > cfg_.sloAdmissionFactor * req.deadlineMs)
        return true; // queue deadlines bound waiting, not service
    if (cfg_.sloP95Ms > 0.0) {
        const double serviceMs = estimator_.estimateServiceMs(
            accel::requestShapeKey(req.model, req.batch));
        if (waitMs + serviceMs > cfg_.sloAdmissionFactor * cfg_.sloP95Ms)
            return true;
    }
    return false;
}

Submission
EvalService::submit(EvalRequest req)
{
    metrics_.recordSubmitted();

    // SLO-aware admission: refuse work the estimator predicts cannot
    // meet its deadline/SLO even if admitted right now — before the
    // request costs a queue slot, a drain slot, or (under Block) a
    // blocked submitter. Decided from cheap O(1) reads (queue depth,
    // EWMAs, the coarse shape key); the expensive canonical key is
    // still only computed at dispatch. A closed service reports
    // RejectedClosed, never RejectedHopeless — shutdown must stay
    // distinguishable from load rejection (clients back off
    // differently) — hence the closed() guard. The depth is sampled
    // once, so the hopeless verdict and the probe decision below are
    // judged against the same queue state.
    const std::size_t depthNow = queue_.depth();
    if (!queue_.closed() && hopeless(req, depthNow)) {
        // Probe admission (see kHopelessProbeInterval): the streak
        // only advances — and a probe only fires — when the queue is
        // idle, so burst rejections under load stay rejections.
        const bool probe =
            depthNow == 0 &&
            hopelessStreak_.fetch_add(1, std::memory_order_relaxed) +
                    1 >=
                kHopelessProbeInterval;
        if (!probe) {
            metrics_.recordRejectedHopeless();
            return {Admission::RejectedHopeless,
                    std::future<EvalResponse>()};
        }
        hopelessStreak_.store(0, std::memory_order_relaxed);
    } else {
        hopelessStreak_.store(0, std::memory_order_relaxed);
    }

    Pending p;
    p.submitTime = Clock::now();
    p.deadline =
        req.deadlineMs > 0.0
            ? p.submitTime +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          req.deadlineMs))
            : Clock::time_point::max();
    p.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    // The canonical key is deliberately NOT computed here: it is the
    // expensive part of submission and only dispatch needs it, so a
    // rejected request costs almost nothing (see serveWave).
    p.req = std::move(req);
    std::future<EvalResponse> fut = p.promise.get_future();

    // Admission is counted (and the drain slot taken) before the push
    // publishes the request: once the dispatcher can resolve it, it is
    // already admitted in the metrics, so a concurrent snapshot never
    // shows completed > admitted. Both are rolled back on rejection.
    metrics_.recordAdmitted();
    {
        std::lock_guard<std::mutex> lock(drainMu_);
        ++unresolved_;
    }
    auto pushed = queue_.push(std::move(p));
    if (pushed.admission != Admission::Admitted) {
        metrics_.rollbackAdmittedToRejected();
        releaseDrainSlot();
        return {pushed.admission, std::future<EvalResponse>()};
    }
    if (pushed.shed)
        finish(std::move(*pushed.shed), ResponseStatus::Shed);
    return {Admission::Admitted, std::move(fut)};
}

void
EvalService::resolve(Pending &&p, EvalResponse &&r)
{
    switch (r.status) {
      case ResponseStatus::Ok:
        metrics_.recordCompleted(r.totalMs, r.cacheHit, r.coalesced);
        if (cfg_.sloP95Ms > 0.0) {
            std::lock_guard<std::mutex> lock(sloMu_);
            sloLatencies_.push_back(r.totalMs);
        }
        break;
      case ResponseStatus::Shed:
        metrics_.recordShed();
        break;
      case ResponseStatus::Expired:
        metrics_.recordExpired();
        break;
    }
    p.promise.set_value(std::move(r));
    releaseDrainSlot();
}

void
EvalService::releaseDrainSlot()
{
    {
        std::lock_guard<std::mutex> lock(drainMu_);
        --unresolved_;
    }
    drainCv_.notify_all();
}

void
EvalService::finish(Pending &&p, ResponseStatus status)
{
    smart_assert(status != ResponseStatus::Ok,
                 "finish() is for terminal non-Ok states");
    const auto now = Clock::now();
    EvalResponse r;
    r.status = status;
    r.queueMs = r.totalMs = msBetween(p.submitTime, now);
    r.digest = p.digest;
    r.tag = std::move(p.req.tag);
    resolve(std::move(p), std::move(r));
}

std::chrono::milliseconds
EvalService::effectiveLinger() const
{
    if (cfg_.sloP95Ms <= 0.0 || cfg_.linger.count() == 0)
        return cfg_.linger;
    // Scale the batching delay with the adaptive cap: a halved wave
    // limit halves the time requests wait for wave-mates. Floored at
    // 1 ms so a short configured linger degrades to minimal
    // coalescing rather than none (integer division would otherwise
    // zero it on the first halving).
    const auto cap = waveLimit_.load(std::memory_order_relaxed);
    return std::chrono::milliseconds(
        std::max<long long>(1, static_cast<long long>(cfg_.linger.count()) *
                                   static_cast<long long>(cap) /
                                   static_cast<long long>(cfg_.maxWave)));
}

void
EvalService::adaptWaveLimit()
{
    if (cfg_.sloP95Ms <= 0.0)
        return;
    std::vector<double> window;
    {
        std::lock_guard<std::mutex> lock(sloMu_);
        if (sloLatencies_.size() < cfg_.sloWindow)
            return;
        window.swap(sloLatencies_);
    }
    if (window.empty())
        return; // defensive: an empty window carries no decision
    const std::size_t rank = std::min(
        window.size() - 1,
        static_cast<std::size_t>(std::ceil(0.95 * window.size())) - 1);
    std::nth_element(window.begin(),
                     window.begin() + static_cast<std::ptrdiff_t>(rank),
                     window.end());
    const double p95 = window[rank];
    if (!std::isfinite(p95))
        return; // a NaN p95 is neither healthy nor violated: skip

    sloWindows_.fetch_add(1, std::memory_order_relaxed);
    std::size_t cap = waveLimit_.load(std::memory_order_relaxed);
    if (p95 > cfg_.sloP95Ms) {
        // Violated: halve the cap (multiplicative decrease) so queued
        // requests stop paying for large waves and long lingers.
        sloViolatedWindows_.fetch_add(1, std::memory_order_relaxed);
        cap = std::max(cfg_.minWave, cap / 2);
    } else if (p95 < 0.8 * cfg_.sloP95Ms) {
        // Comfortably healthy: grow additively back toward maxWave
        // for better coalescing/throughput.
        cap = std::min(cfg_.maxWave, cap + 1);
    }
    waveLimit_.store(cap, std::memory_order_relaxed);
}

void
EvalService::dispatcherLoop()
{
    while (true) {
        auto wave =
            queue_.popWave(waveLimit_.load(std::memory_order_relaxed),
                           effectiveLinger());
        for (auto &p : wave.expired)
            finish(std::move(p), ResponseStatus::Expired);
        if (!wave.items.empty())
            serveWave(std::move(wave.items));
        else if (wave.expired.empty())
            break; // closed and drained
        adaptWaveLimit();
    }
}

void
EvalService::serveWave(std::vector<Pending> &&wave)
{
    const auto dispatch = Clock::now();

    // Requests whose key already has a ready cache entry complete
    // immediately; the rest are grouped by key so identical requests
    // in one wave share a single evaluation (coalescing).
    struct Group
    {
        std::vector<Pending> members;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, std::size_t> group_of;

    auto resolveOk = [&](Pending &&p, const accel::InferenceResult &res,
                         bool cache_hit, bool coalesced) {
        const auto now = Clock::now();
        EvalResponse r;
        r.status = ResponseStatus::Ok;
        r.result = res;
        r.cacheHit = cache_hit;
        r.coalesced = coalesced;
        r.queueMs = msBetween(p.submitTime, dispatch);
        r.serviceMs = msBetween(dispatch, now);
        r.totalMs = msBetween(p.submitTime, now);
        r.digest = p.digest;
        r.tag = std::move(p.req.tag);
        resolve(std::move(p), std::move(r));
    };

    for (auto &p : wave) {
        p.key = accel::requestKey(p.req.cfg, p.req.model, p.req.batch);
        p.digest = accel::requestDigest(p.key);
        accel::InferenceResult cached;
        if (cfg_.cacheEnabled && cache_.get(p.key, cached)) {
            resolveOk(std::move(p), cached, /*cache_hit=*/true,
                      /*coalesced=*/false);
            continue;
        }
        auto [it, fresh] = group_of.emplace(p.key, groups.size());
        if (fresh)
            groups.emplace_back();
        groups[it->second].members.push_back(std::move(p));
    }
    if (groups.empty())
        return;

    std::vector<accel::BatchItem> items;
    items.reserve(groups.size());
    for (const auto &g : groups) {
        const Pending &head = g.members.front();
        items.push_back({head.req.cfg, head.req.model, head.req.batch});
    }
    metrics_.recordWave(items.size());

    try {
        // The hook runs on pool workers as each item finishes; group
        // membership is disjoint per index, so fulfillment is
        // race-free without extra locking. put() enforces the LRU
        // budget per shard, so a full cache evicts its coldest
        // entries instead of wiping concurrent workers' inserts.
        const auto waveStart = Clock::now();
        accel::runBatch(
            items, [&](std::size_t i, const accel::InferenceResult &res) {
                Group &g = groups[i];
                const Pending &head = g.members.front();
                // Cache ownership and the cost sample both follow the
                // group head (the request that triggered the
                // evaluation); read its fields before resolveOk moves
                // them into the response.
                if (cfg_.cacheEnabled)
                    cache_.put(head.key, res, head.req.tag);
                estimator_.recordService(
                    accel::requestShapeKey(head.req.model,
                                           head.req.batch),
                    msBetween(dispatch, Clock::now()));
                bool first = true;
                for (auto &p : g.members) {
                    resolveOk(std::move(p), res, /*cache_hit=*/false,
                              /*coalesced=*/!first);
                    first = false;
                }
            });
        estimator_.recordWave(msBetween(waveStart, Clock::now()),
                              items.size());
    } catch (...) {
        // A failed wave must still resolve every future: promises the
        // hook already satisfied throw future_error and are skipped.
        // Each exception-resolved request is counted as failed so the
        // admitted == completed + shed + expired + failed accounting
        // stays closed.
        for (auto &g : groups) {
            for (auto &p : g.members) {
                try {
                    p.promise.set_exception(std::current_exception());
                } catch (const std::future_error &) {
                    continue;
                }
                metrics_.recordFailed();
                releaseDrainSlot();
            }
        }
    }
}

} // namespace smart::serve
