/**
 * @file
 * Request/response types of the async evaluation service: what a
 * client submits (configuration, model, batch, priority, deadline),
 * what the admission controller decides, and what the request's future
 * eventually carries. See serve/service.hh for the service itself.
 */

#ifndef SMART_SERVE_REQUEST_HH
#define SMART_SERVE_REQUEST_HH

#include <cstdint>
#include <future>
#include <string>

#include "accel/config.hh"
#include "accel/perf.hh"
#include "cnn/models.hh"

namespace smart::serve
{

/** Scheduling priority; higher values dispatch first. */
enum class Priority
{
    Low = 0,
    Normal = 1,
    High = 2
};

/** Priority name for logs and tables. */
inline const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
    }
    return "?";
}

/** One client request: an evaluation point plus scheduling intent. */
struct EvalRequest
{
    accel::AcceleratorConfig cfg;
    cnn::CnnModel model;
    int batch = 1;
    Priority priority = Priority::Normal;
    /**
     * Queue-time budget in milliseconds: a request still queued this
     * long after submission is expired (its future reports Expired)
     * instead of dispatched. 0 means no deadline. A request already
     * handed to an evaluation wave always runs to completion.
     */
    double deadlineMs = 0.0;
    /**
     * Quality budget in milliseconds: if the estimator predicts the
     * ILP-optimal path alone costs more than this, the request is
     * eligible for degraded (greedy-scheduled) serving under
     * ServiceConfig::degradePolicy Auto. 0 inherits the tenant's
     * TenantSlo::maxQualityMs (or the global ServiceConfig value);
     * negative opts out of budget-driven degradation entirely.
     */
    double maxQualityMs = 0.0;
    /**
     * Caller label, echoed in the response. Doubles as the tenant
     * identity for fair-share admission (QueueConfig::maxPerTenant)
     * and shed-victim selection: requests sharing a tag share one
     * tenant budget.
     */
    std::string tag;
};

/** Terminal state of an admitted request. */
enum class ResponseStatus
{
    Ok,      //!< Evaluated (or served from cache); result is valid.
    Shed,    //!< Evicted while queued to admit a higher-priority request.
    Expired  //!< Deadline passed before dispatch.
};

/** ResponseStatus name for logs and tables. */
inline const char *
responseStatusName(ResponseStatus s)
{
    switch (s) {
      case ResponseStatus::Ok:
        return "ok";
      case ResponseStatus::Shed:
        return "shed";
      case ResponseStatus::Expired:
        return "expired";
    }
    return "?";
}

/** What an admitted request's future resolves to. */
struct EvalResponse
{
    ResponseStatus status = ResponseStatus::Ok;
    accel::InferenceResult result; //!< Valid only when status == Ok.
    bool cacheHit = false;   //!< Served from the result cache.
    bool coalesced = false;  //!< Shared another request's evaluation.
    double queueMs = 0.0;   //!< Submission -> wave dispatch.
    /** Wave dispatch -> completion (near-zero on a cache hit). */
    double serviceMs = 0.0;
    double totalMs = 0.0;    //!< Submission -> completion.
    /**
     * requestDigest of the canonical key; 0 when the request never
     * reached dispatch (shed / expired), since the key is only
     * computed on the dispatch path.
     */
    std::uint64_t digest = 0;
    std::string tag; //!< Echo of EvalRequest::tag.
    /**
     * Graceful degradation: true when this request was served through
     * the greedy (anytime) scheduler instead of the ILP. quality and
     * gapBound mirror InferenceResult::schedQuality/schedGapBound,
     * with CacheHit substituted when the result came from a cache
     * (the underlying schedule quality is inside `result`).
     */
    bool degraded = false;
    compiler::Quality quality = compiler::Quality::Optimal;
    double gapBound = 0.0;
    /**
     * Nonzero when this request was sampled by the tracer
     * (ServiceConfig::traceSampleEvery): the TraceRecorder trace id
     * its spans carry, so callers can correlate a response with its
     * slices in the Chrome trace export and with flight-recorder
     * incidents. 0 = not sampled (or tracing disarmed).
     */
    std::uint64_t traceId = 0;
};

/** Admission decision, reported synchronously by submit(). */
enum class Admission
{
    Admitted,
    RejectedFull,   //!< Queue at capacity under the Reject policy.
    RejectedQuota,  //!< Tenant over its per-tenant depth quota.
    RejectedClosed, //!< Service closed (draining or destroyed).
    /**
     * SLO-aware admission: the cost estimator predicts this request
     * cannot meet its deadline or the configured p95 SLO even if
     * admitted right now (predicted queue wait + service time already
     * over budget), so it is refused up front instead of burning a
     * queue slot and failing slowly. See ServiceConfig::
     * sloAdmissionFactor and serve/estimator.hh.
     */
    RejectedHopeless,
    /**
     * Graceful degradation: admitted, but routed through the greedy
     * (anytime) scheduler because the ILP path was predicted to blow
     * the deadline or quality budget — the request that would have
     * been RejectedHopeless under degradePolicy Off. Counts as
     * admitted(); the future resolves normally with
     * EvalResponse::degraded set.
     */
    ServedDegraded
};

/** Admission name for logs and tables. */
inline const char *
admissionName(Admission a)
{
    switch (a) {
      case Admission::Admitted:
        return "admitted";
      case Admission::RejectedFull:
        return "rejected-full";
      case Admission::RejectedQuota:
        return "rejected-quota";
      case Admission::RejectedClosed:
        return "rejected-closed";
      case Admission::RejectedHopeless:
        return "rejected-hopeless";
      case Admission::ServedDegraded:
        return "served-degraded";
    }
    return "?";
}

/**
 * submit()'s synchronous result. Rejections are always reported here
 * (never via a dangling future): response is valid only when admitted.
 */
struct Submission
{
    Admission admission = Admission::Admitted;
    std::future<EvalResponse> response;
    /**
     * Estimator-driven deadline assignment: on RejectedHopeless, the
     * deadline (ms) the estimator predicts this request COULD meet if
     * resubmitted — predicted queue wait + service time, scaled by the
     * tenant's admission-factor headroom. A client that resubmits with
     * `deadlineMs = suggestedDeadlineMs` passes the wait-based
     * deadline gate by construction (under unchanged estimates), so
     * it can retry purposefully instead of blind-retrying; the p95
     * SLO gate still applies, so a resubmit into a still-hopeless
     * queue is refused again (with a fresh, larger suggestion). The
     * budget covers predicted queue drain + service, not the
     * service's elective batching linger — a retry into an idle
     * long-linger service should arrive with wave-mates (or the
     * operator keeps lingers shorter than the budgets it suggests).
     * 0 on every non-hopeless outcome, and when the estimator is
     * cold.
     */
    double suggestedDeadlineMs = 0.0;

    bool admitted() const
    {
        return admission == Admission::Admitted ||
               admission == Admission::ServedDegraded;
    }
};

} // namespace smart::serve

#endif // SMART_SERVE_REQUEST_HH
