#include "serve/metrics.hh"

#include <cstdio>
#include <sstream>

#include "accel/hash.hh"
#include "common/jsonreport.hh"

namespace smart::serve
{

/**
 * Tenant tags are client-controlled strings but metric names are
 * JSON identifiers parsed by the line-oriented trajectory tooling,
 * so anything outside [A-Za-z0-9_-] is mapped to '_' before the tag
 * enters a name. When sanitization actually changed the tag, a short
 * FNV-1a suffix of the original keeps distinct tags ("a.b" vs "a:b")
 * from colliding onto one metric name and emitting duplicate JSON
 * keys. (The JSON emitter additionally escapes every key — see
 * common/jsonreport.hh — so even a missed caller cannot corrupt the
 * report itself.)
 */
std::string
metricSafeTag(const std::string &tag)
{
    std::string safe = tag;
    for (char &c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    if (safe != tag) {
        char suffix[12];
        std::snprintf(suffix, sizeof(suffix), "_%08x",
                      static_cast<unsigned>(accel::requestDigest(tag) &
                                            0xffffffffu));
        safe += suffix;
    }
    return safe;
}

std::vector<std::pair<std::string, double>>
MetricsSnapshot::toMetrics() const
{
    std::vector<std::pair<std::string, double>> m = {
        {"submitted", static_cast<double>(submitted)},
        {"admitted", static_cast<double>(admitted)},
        {"rejected", static_cast<double>(rejected)},
        {"rejected_hopeless", static_cast<double>(rejectedHopeless)},
        {"shed", static_cast<double>(shed)},
        {"expired", static_cast<double>(expired)},
        {"completed", static_cast<double>(completed)},
        {"served_degraded", static_cast<double>(servedDegraded)},
        {"failed", static_cast<double>(failed)},
        {"cache_hits", static_cast<double>(cacheHits)},
        {"cache_misses", static_cast<double>(cacheMisses)},
        {"cache_hit_rate", cacheHitRate},
        {"cache_evictions", static_cast<double>(cacheEvictions)},
        {"cache_entries", static_cast<double>(cacheEntries)},
        {"cache_bytes", static_cast<double>(cacheBytes)},
        {"l2_hits", static_cast<double>(l2Hits)},
        {"l2_misses", static_cast<double>(l2Misses)},
        {"l2_puts", static_cast<double>(l2Puts)},
        {"l2_corrupt_skipped", static_cast<double>(l2CorruptSkipped)},
        {"l2_entries", static_cast<double>(l2Entries)},
        {"coalesced", static_cast<double>(coalesced)},
        {"waves", static_cast<double>(waves)},
        {"wave_items", static_cast<double>(waveItems)},
        {"mean_wave_size", meanWaveSize},
        {"wave_limit", static_cast<double>(waveLimit)},
        {"slo_p95_ms", sloP95Ms},
        {"slo_windows", static_cast<double>(sloWindows)},
        {"slo_violated_windows", static_cast<double>(sloViolatedWindows)},
        {"est_service_ms", estServiceMs},
        {"est_wave_ms", estWaveMs},
        {"est_service_samples", static_cast<double>(estServiceSamples)},
        {"est_service_interval_ms", estServiceIntervalMs},
        {"latency_p50_ms", latencyP50Ms},
        {"latency_p95_ms", latencyP95Ms},
        {"latency_p99_ms", latencyP99Ms},
        {"latency_mean_ms", latencyMeanMs},
        {"latency_max_ms", latencyMaxMs},
        {"degraded_latency_p50_ms", degradedLatencyP50Ms},
        {"degraded_latency_p95_ms", degradedLatencyP95Ms},
        {"optimal_latency_p50_ms", optimalLatencyP50Ms},
        {"optimal_latency_p95_ms", optimalLatencyP95Ms},
        {"elapsed_ms", elapsedMs},
        {"throughput_rps", throughputRps},
        {"queue_depth", static_cast<double>(queueDepth)},
        {"queue_high_water", static_cast<double>(queueHighWater)},
    };
    // Per-tenant cache slices ride at the end, one triple per tag, so
    // the fixed schema above stays byte-stable for trajectory diffs.
    for (const auto &t : tenantCache) {
        const std::string tag = metricSafeTag(t.tag);
        m.emplace_back("tenant_" + tag + "_cache_entries",
                       static_cast<double>(t.entries));
        m.emplace_back("tenant_" + tag + "_cache_bytes",
                       static_cast<double>(t.bytes));
        m.emplace_back("tenant_" + tag + "_cache_evictions",
                       static_cast<double>(t.evictions));
    }
    // Per-tenant latency/SLO slices follow, same stable-tail contract.
    for (const auto &t : tenantSlo) {
        const std::string tag = metricSafeTag(t.tag);
        m.emplace_back("tenant_" + tag + "_completed",
                       static_cast<double>(t.completed));
        m.emplace_back("tenant_" + tag + "_latency_p50_ms",
                       t.latencyP50Ms);
        m.emplace_back("tenant_" + tag + "_latency_p95_ms",
                       t.latencyP95Ms);
        m.emplace_back("tenant_" + tag + "_degraded",
                       static_cast<double>(t.degraded));
        m.emplace_back("tenant_" + tag + "_slo_p95_ms", t.sloP95Ms);
        m.emplace_back("tenant_" + tag + "_slo_violated_windows",
                       static_cast<double>(t.violatedWindows));
    }
    // Per-stage latency breakdown from the span recorder (empty when
    // tracing is disarmed). Stage names are static instrumentation
    // strings, but they pass through the same sanitizer as tags so a
    // future span name cannot break the flat-metric grammar.
    for (const auto &st : stages) {
        const std::string name = metricSafeTag(st.name);
        m.emplace_back("stage_" + name + "_p50_ms", st.p50Ms);
        m.emplace_back("stage_" + name + "_p95_ms", st.p95Ms);
        m.emplace_back("stage_" + name + "_count",
                       static_cast<double>(st.count));
    }
    return m;
}

std::string
MetricsSnapshot::toJson(const std::string &bench) const
{
    std::ostringstream os;
    writeFlatMetricsJson(os, bench, toMetrics());
    return os.str();
}

ServiceMetrics::ServiceMetrics()
    : latency_(1e-3, 1e7, 1.25), degradedLatency_(1e-3, 1e7, 1.25),
      optimalLatency_(1e-3, 1e7, 1.25),
      start_(std::chrono::steady_clock::now())
{}

void
ServiceMetrics::recordSubmitted()
{
    LockGuard lock(mu_);
    ++submitted_;
}

void
ServiceMetrics::recordAdmitted()
{
    LockGuard lock(mu_);
    ++admitted_;
}

void
ServiceMetrics::rollbackAdmittedToRejected()
{
    LockGuard lock(mu_);
    --admitted_;
    ++rejected_;
}

void
ServiceMetrics::rollbackAdmittedToHopeless()
{
    LockGuard lock(mu_);
    --admitted_;
    ++rejected_;
    ++rejectedHopeless_;
}

void
ServiceMetrics::recordRejectedHopeless()
{
    LockGuard lock(mu_);
    ++rejected_;
    ++rejectedHopeless_;
}

void
ServiceMetrics::recordShed()
{
    LockGuard lock(mu_);
    ++shed_;
}

void
ServiceMetrics::recordExpired()
{
    LockGuard lock(mu_);
    ++expired_;
}

void
ServiceMetrics::recordFailed()
{
    LockGuard lock(mu_);
    ++failed_;
}

void
ServiceMetrics::recordCompleted(double totalMs, bool cacheHit,
                                bool coalesced, bool degraded,
                                const std::string &tag)
{
    LockGuard lock(mu_);
    ++completed_;
    if (degraded)
        ++servedDegraded_;
    if (cacheHit)
        ++cacheHits_;
    else
        ++cacheMisses_;
    if (coalesced)
        ++coalesced_;
    latency_.add(totalMs);
    (degraded ? degradedLatency_ : optimalLatency_).add(totalMs);
    if (tag.empty())
        return;
    auto it = tenantLatency_.find(tag);
    if (it == tenantLatency_.end()) {
        if (tenantLatency_.size() >= kMaxTenantStats)
            return; // tag-churn bound: counted globally only
        it = tenantLatency_.emplace(tag, TenantLatency{}).first;
    }
    it->second.latency.add(totalMs);
    ++it->second.completed;
    if (degraded)
        ++it->second.degraded;
}

void
ServiceMetrics::recordWave(std::size_t uniqueItems)
{
    LockGuard lock(mu_);
    ++waves_;
    waveItems_ += uniqueItems;
}

MetricsSnapshot
ServiceMetrics::snapshot(std::size_t queueDepth,
                         std::size_t queueHighWater) const
{
    LockGuard lock(mu_);
    MetricsSnapshot s;
    s.submitted = submitted_;
    s.admitted = admitted_;
    s.rejected = rejected_;
    s.rejectedHopeless = rejectedHopeless_;
    s.shed = shed_;
    s.expired = expired_;
    s.completed = completed_;
    s.servedDegraded = servedDegraded_;
    s.failed = failed_;
    s.cacheHits = cacheHits_;
    s.cacheMisses = cacheMisses_;
    s.coalesced = coalesced_;
    s.waves = waves_;
    s.waveItems = waveItems_;
    const std::uint64_t looked = cacheHits_ + cacheMisses_;
    s.cacheHitRate =
        looked ? static_cast<double>(cacheHits_) / looked : 0.0;
    s.meanWaveSize =
        waves_ ? static_cast<double>(waveItems_) / waves_ : 0.0;
    s.latencyP50Ms = latency_.quantile(0.50);
    s.latencyP95Ms = latency_.quantile(0.95);
    s.latencyP99Ms = latency_.quantile(0.99);
    s.latencyMeanMs = latency_.mean();
    s.latencyMaxMs = latency_.max();
    s.degradedLatencyP50Ms = degradedLatency_.quantile(0.50);
    s.degradedLatencyP95Ms = degradedLatency_.quantile(0.95);
    s.optimalLatencyP50Ms = optimalLatency_.quantile(0.50);
    s.optimalLatencyP95Ms = optimalLatency_.quantile(0.95);
    for (const auto &[tag, tl] : tenantLatency_) {
        MetricsSnapshot::TenantSloStat ts;
        ts.tag = tag;
        ts.completed = tl.completed;
        ts.degraded = tl.degraded;
        ts.latencyP50Ms = tl.latency.quantile(0.50);
        ts.latencyP95Ms = tl.latency.quantile(0.95);
        // sloP95Ms / violatedWindows are the service's to fill: the
        // SLO table and the adaptation counters live in EvalService.
        s.tenantSlo.push_back(std::move(ts));
    }
    s.elapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    s.throughputRps =
        s.elapsedMs > 0.0 ? completed_ * 1e3 / s.elapsedMs : 0.0;
    s.queueDepth = queueDepth;
    s.queueHighWater = queueHighWater;
    return s;
}

} // namespace smart::serve
