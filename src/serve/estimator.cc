#include "serve/estimator.hh"

#include <algorithm>
#include <cmath>

namespace smart::serve
{

namespace
{

/** EWMA update; the first sample seeds the average directly. */
double
fold(double avg, std::uint64_t samples, double alpha, double x)
{
    return samples == 0 ? x : avg + alpha * (x - avg);
}

} // namespace

CostEstimator::CostEstimator(double alpha)
    : alpha_(std::clamp(alpha, 1e-3, 1.0))
{}

void
CostEstimator::recordService(const std::string &shapeKey,
                             double serviceMs)
{
    if (!std::isfinite(serviceMs) || serviceMs < 0.0)
        return; // a broken clock must not poison admission decisions
    std::lock_guard<std::mutex> lock(mu_);
    serviceMs_ = fold(serviceMs_, serviceSamples_, alpha_, serviceMs);
    ++serviceSamples_;
    auto it = shapeMs_.find(shapeKey);
    if (it != shapeMs_.end())
        it->second = fold(it->second, 1, alpha_, serviceMs);
    else if (shapeMs_.size() < kMaxShapes)
        shapeMs_.emplace(shapeKey, serviceMs);
}

void
CostEstimator::recordWave(double waveMs, std::size_t items)
{
    if (!std::isfinite(waveMs) || waveMs < 0.0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    waveMs_ = fold(waveMs_, waveSamples_, alpha_, waveMs);
    itemMs_ = fold(itemMs_, waveSamples_, alpha_,
                   waveMs / static_cast<double>(
                                std::max<std::size_t>(1, items)));
    ++waveSamples_;
}

double
CostEstimator::estimateServiceMs(const std::string &shapeKey) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shapeMs_.find(shapeKey);
    if (it != shapeMs_.end())
        return it->second;
    return serviceSamples_ ? serviceMs_ : 0.0;
}

double
CostEstimator::shapeEstimateMs(const std::string &shapeKey) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shapeMs_.find(shapeKey);
    return it != shapeMs_.end() ? it->second : 0.0;
}

double
CostEstimator::estimateQueueWaitMs(std::size_t queueDepth) const
{
    if (queueDepth == 0)
        return 0.0;
    std::lock_guard<std::mutex> lock(mu_);
    // Draining one queued item costs the per-item drain EWMA. Until
    // the first whole-wave sample lands, the global service EWMA
    // stands in (per-request samples are recorded before their
    // futures resolve; the wave sample only after the wave returns,
    // so a submitter can observe a completed request while the wave
    // EWMA is still cold) — a deliberately serial, pessimistic guess.
    const double perItemMs =
        waveSamples_ ? itemMs_ : (serviceSamples_ ? serviceMs_ : 0.0);
    if (perItemMs <= 0.0)
        return 0.0; // cold: no evidence, never reject on a guess
    return static_cast<double>(queueDepth) * perItemMs;
}

double
CostEstimator::suggestDeadlineMs(const std::string &shapeKey,
                                 std::size_t queueDepth,
                                 double factor) const
{
    const double budget = estimateQueueWaitMs(queueDepth) +
                          estimateServiceMs(shapeKey);
    if (budget <= 0.0)
        return 0.0; // cold: no evidence, no suggestion
    if (!(factor > 0.0) || !std::isfinite(factor))
        factor = 1.0;
    return budget / factor;
}

CostEstimator::Snapshot
CostEstimator::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.serviceSamples = serviceSamples_;
    s.waveSamples = waveSamples_;
    s.serviceMs = serviceMs_;
    s.waveMs = waveMs_;
    s.drainMsPerItem = itemMs_;
    s.shapes = shapeMs_.size();
    return s;
}

} // namespace smart::serve
