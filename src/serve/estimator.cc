#include "serve/estimator.hh"

#include <algorithm>
#include <cmath>

namespace smart::serve
{

namespace
{

/** EWMA update; the first sample seeds the average directly. */
double
fold(double avg, std::uint64_t samples, double alpha, double x)
{
    return samples == 0 ? x : avg + alpha * (x - avg);
}

} // namespace

CostEstimator::CostEstimator(double alpha)
    : alpha_(std::clamp(alpha, 1e-3, 1.0))
{}

void
CostEstimator::foldInto(Ewma &e, double x) const
{
    if (e.samples == 0) {
        e.ms = x;
        e.var = 0.0; // one sample carries no spread evidence
    } else {
        // West's exponentially weighted mean/variance update: the
        // same alpha discounts old squared deviations, so the
        // interval tracks regime shifts at the pace the mean does.
        const double diff = x - e.ms;
        const double incr = alpha_ * diff;
        e.ms += incr;
        e.var = (1.0 - alpha_) * (e.var + diff * incr);
    }
    ++e.samples;
}

std::pair<double, double>
CostEstimator::intervalOf(const Ewma &e)
{
    if (e.samples < 2)
        return {0.0, 0.0}; // no spread evidence yet
    const double half = 2.0 * std::sqrt(std::max(0.0, e.var));
    return {std::max(0.0, e.ms - half), e.ms + half};
}

void
CostEstimator::recordService(const std::string &shapeKey,
                             double serviceMs)
{
    if (!std::isfinite(serviceMs) || serviceMs < 0.0)
        return; // a broken clock must not poison admission decisions
    LockGuard lock(mu_);
    foldInto(service_, serviceMs);
    auto it = shapeMs_.find(shapeKey);
    if (it != shapeMs_.end())
        foldInto(it->second, serviceMs);
    else if (shapeMs_.size() < kMaxShapes)
        foldInto(shapeMs_.emplace(shapeKey, Ewma{}).first->second,
                 serviceMs);
}

void
CostEstimator::recordWave(double waveMs, std::size_t items)
{
    if (!std::isfinite(waveMs) || waveMs < 0.0)
        return;
    LockGuard lock(mu_);
    waveMs_ = fold(waveMs_, waveSamples_, alpha_, waveMs);
    itemMs_ = fold(itemMs_, waveSamples_, alpha_,
                   waveMs / static_cast<double>(
                                std::max<std::size_t>(1, items)));
    ++waveSamples_;
}

double
CostEstimator::estimateServiceMs(const std::string &shapeKey) const
{
    LockGuard lock(mu_);
    auto it = shapeMs_.find(shapeKey);
    if (it != shapeMs_.end())
        return it->second.ms;
    return service_.samples ? service_.ms : 0.0;
}

double
CostEstimator::shapeEstimateMs(const std::string &shapeKey) const
{
    LockGuard lock(mu_);
    auto it = shapeMs_.find(shapeKey);
    return it != shapeMs_.end() ? it->second.ms : 0.0;
}

std::pair<double, double>
CostEstimator::estimateInterval(const std::string &shapeKey) const
{
    LockGuard lock(mu_);
    if (!shapeKey.empty()) {
        auto it = shapeMs_.find(shapeKey);
        if (it != shapeMs_.end() && it->second.samples >= 2)
            return intervalOf(it->second);
    }
    return intervalOf(service_);
}

double
CostEstimator::estimateQueueWaitMs(std::size_t queueDepth) const
{
    if (queueDepth == 0)
        return 0.0;
    LockGuard lock(mu_);
    // Draining one queued item costs the per-item drain EWMA. Until
    // the first whole-wave sample lands, the global service EWMA
    // stands in (per-request samples are recorded before their
    // futures resolve; the wave sample only after the wave returns,
    // so a submitter can observe a completed request while the wave
    // EWMA is still cold) — a deliberately serial, pessimistic guess.
    const double perItemMs =
        waveSamples_ ? itemMs_ : (service_.samples ? service_.ms : 0.0);
    if (perItemMs <= 0.0)
        return 0.0; // cold: no evidence, never reject on a guess
    return static_cast<double>(queueDepth) * perItemMs;
}

double
CostEstimator::suggestDeadlineMs(const std::string &shapeKey,
                                 std::size_t queueDepth,
                                 double factor) const
{
    const double budget = estimateQueueWaitMs(queueDepth) +
                          estimateServiceMs(shapeKey);
    if (budget <= 0.0)
        return 0.0; // cold: no evidence, no suggestion
    if (!(factor > 0.0) || !std::isfinite(factor))
        factor = 1.0;
    return budget / factor;
}

CostEstimator::Snapshot
CostEstimator::snapshot() const
{
    LockGuard lock(mu_);
    Snapshot s;
    s.serviceSamples = service_.samples;
    s.waveSamples = waveSamples_;
    s.serviceMs = service_.ms;
    s.waveMs = waveMs_;
    s.drainMsPerItem = itemMs_;
    s.shapes = shapeMs_.size();
    const auto interval = intervalOf(service_);
    s.serviceIntervalMs = interval.second - interval.first;
    return s;
}

} // namespace smart::serve
