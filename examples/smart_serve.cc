/**
 * @file
 * Serving-layer demo and smoke test: replay a synthetic bursty request
 * trace (mixed models and schemes, ~70% sweep-point repeats) against
 * the async evaluation service twice — a cold pass and a warm pass —
 * and print admission/cache/latency metrics. With --json [--out PATH]
 * the final metrics snapshot is also written in the
 * BENCH_micro.json-compatible schema (SERVE_metrics.json by default).
 *
 * Exits nonzero if the replay accounting is inconsistent (a request
 * neither completed nor reported rejected/shed/expired), so CI can run
 * this binary as a correctness smoke test, not just a demo.
 */

#include <iostream>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "serve/trace.hh"

int
main(int argc, char **argv)
{
    using namespace smart;

    setInformEnabled(false);
    bool json = false;
    std::string out = "SERVE_metrics.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
        else if (std::string(argv[i]) == "--out" && i + 1 < argc)
            out = argv[++i];
    }

    // A service sized so the bursty trace exercises admission control:
    // bounded queue, shed policy, small coalescing waves.
    serve::ServiceConfig cfg;
    cfg.queue.maxDepth = 48;
    cfg.queue.policy = serve::AdmissionPolicy::Shed;
    cfg.maxWave = 8;
    cfg.linger = std::chrono::milliseconds(1);
    serve::EvalService svc(cfg);

    serve::TraceConfig tcfg;
    auto trace = serve::makeSyntheticTrace(tcfg);
    std::cout << "replaying " << trace.size() << " requests ("
              << tcfg.bursts << " bursts) against the service...\n";

    const auto cold = serve::replayTrace(svc, trace, /*timeScale=*/1.0);
    const auto warm = serve::replayTrace(svc, trace, /*timeScale=*/1.0);

    Table t({"pass", "completed", "rejected", "shed", "expired",
             "cache hits", "coalesced", "wall ms"});
    for (const auto *p : {&cold, &warm}) {
        t.row()
            .cell(p == &cold ? "cold" : "warm")
            .integer(static_cast<long long>(p->completed))
            .integer(static_cast<long long>(p->rejected))
            .integer(static_cast<long long>(p->shed))
            .integer(static_cast<long long>(p->expired))
            .integer(static_cast<long long>(p->cacheHits))
            .integer(static_cast<long long>(p->coalesced))
            .num(p->wallMs, 1);
    }
    t.print(std::cout);

    const auto m = svc.metrics();
    Table s({"metric", "value"});
    s.row().cell("cache hit rate (%)").num(100.0 * m.cacheHitRate, 1);
    s.row().cell("mean wave size").num(m.meanWaveSize, 2);
    s.row().cell("latency p50 (ms)").num(m.latencyP50Ms, 3);
    s.row().cell("latency p95 (ms)").num(m.latencyP95Ms, 3);
    s.row().cell("latency p99 (ms)").num(m.latencyP99Ms, 3);
    s.row().cell("throughput (req/s)").num(m.throughputRps, 1);
    s.row().cell("queue high water").integer(
        static_cast<long long>(m.queueHighWater));
    s.print(std::cout);

    if (json) {
        std::ofstream os(out);
        os << m.toJson("smart_serve");
        std::cout << "wrote " << out << "\n";
    }

    if (!cold.consistent() || !warm.consistent()) {
        std::cerr << "FAIL: replay accounting is inconsistent\n";
        return 1;
    }
    if (warm.completed > 0 && warm.cacheHits == 0) {
        std::cerr << "FAIL: warm pass produced no cache hits\n";
        return 1;
    }
    std::cout << "OK: all requests accounted for; warm pass hit the "
                 "result cache\n";
    return 0;
}
