/**
 * @file
 * Serving-layer demo and smoke test: replay a synthetic two-tenant
 * bursty request trace (one tenant takes ~85% of the traffic) against
 * the async evaluation service twice — a cold pass and a warm pass —
 * under a per-tenant admission quota, per-tenant result-cache byte
 * budgets, an LRU result cache smaller than the working set, and
 * per-tenant p95 latency SLOs (the light "mouse" tenant gets a
 * stricter target than the global default the "hog" inherits)
 * driving both the adaptive wave sizing and SLO-aware (hopeless)
 * admission. After the replays it demonstrates estimator-driven
 * deadline assignment: a request with an impossible deadline is
 * refused with a suggested feasible deadline, and the resubmission
 * carrying that suggestion is admitted. Prints admission/cache/
 * latency metrics plus the per-tenant accounting, SLO standing, and
 * cache occupancy. With --json [--out PATH] the final metrics
 * snapshot is also written in the BENCH_micro.json-compatible schema
 * (SERVE_metrics.json by default).
 *
 * SMART_DISK_CACHE=<path> enables the persistent L2 schedule cache at
 * that path, so a second run of this binary against the same file
 * warm-starts from the first run's results (the crash-recovery CI leg
 * runs exactly that, with torn writes injected via SMART_FAULT_*).
 * SMART_EXPECT_WARM=1 additionally fails the smoke test when the run
 * saw no L2 hits — the assertion that a restart actually warm-started.
 *
 * Exits nonzero if the replay accounting is inconsistent (a request
 * neither completed nor reported rejected/shed/expired), if the warm
 * pass missed the cache entirely, if the bounded cache overflowed
 * without a single LRU eviction, if any tenant's resident cache
 * bytes exceed its configured budget, if the per-tenant SLO rows are
 * missing from the snapshot, or if the suggested-deadline handshake
 * fails — so CI can run this binary as a correctness smoke test, not
 * just a demo.
 */

#include <cstdlib>
#include <iostream>
#include <fstream>
#include <set>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "serve/trace.hh"

int
main(int argc, char **argv)
{
    using namespace smart;

    setInformEnabled(false);
    bool json = false;
    std::string out = "SERVE_metrics.json";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
        else if (std::string(argv[i]) == "--out" && i + 1 < argc)
            out = argv[++i];
    }

    // Probe one evaluation's cache footprint so the per-tenant byte
    // budget below can be sized in entries (the entry size depends on
    // the model's layer count, not on anything configurable here).
    std::size_t perEntryBytes = 0;
    {
        serve::ServiceConfig pcfg;
        pcfg.cacheShards = 1;
        serve::EvalService probe(pcfg);
        serve::EvalRequest pr;
        pr.cfg = accel::makeScheme(accel::Scheme::Sram);
        pr.model = cnn::convLayersOnly(cnn::makeAlexNet());
        pr.batch = 1;
        probe.submit(std::move(pr)).response.get();
        perEntryBytes = probe.metrics().cacheBytes;
    }

    // A service sized so the bursty trace exercises admission control
    // and cache pressure: bounded queue, shed policy, per-tenant
    // quota, small coalescing waves under a p95 SLO (driving adaptive
    // wave sizing AND hopeless rejection), an LRU result cache
    // deliberately smaller than the sweep working set, and per-tenant
    // cache budgets of ~5 entries so the hog tenant overflows its own
    // slice without touching the mouse's.
    serve::ServiceConfig cfg;
    cfg.queue.maxDepth = 48;
    cfg.queue.policy = serve::AdmissionPolicy::Shed;
    cfg.queue.maxPerTenant = 36;
    cfg.maxWave = 8;
    cfg.minWave = 1;
    cfg.linger = std::chrono::milliseconds(1);
    cfg.sloP95Ms = 250.0;
    cfg.sloAdmissionFactor = 1.0;
    // Per-tenant SLO: the light interactive tenant gets a stricter
    // p95 target (with admission headroom) than the global default
    // the bursty hog inherits, so wave adaptation and hopeless
    // admission treat the two asymmetrically.
    cfg.tenantSlo["mouse"] = {/*p95Ms=*/150.0,
                              /*admissionFactor=*/0.8,
                              /*defaultDeadlineMs=*/0.0};
    cfg.cacheMaxEntries = 8;
    cfg.cacheShards = 1;
    cfg.tenantCacheBytes = 5 * perEntryBytes + 64;
    // End-to-end tracing: sample one submission in four, and keep a
    // small flight-recorder log so the incident dump below stays
    // readable (the bursty replay rejects plenty of requests as
    // hopeless, and each sampled one captures its span history).
    cfg.traceSampleEvery = 4;
    cfg.incidentLogCap = 4;
    // Persistent L2 (opt-in): point SMART_DISK_CACHE at a file and a
    // rerun of this binary warm-starts from it across the restart.
    const char *diskEnv = std::getenv("SMART_DISK_CACHE");
    if (diskEnv && *diskEnv)
        cfg.diskCachePath = diskEnv;
    const char *warmEnv = std::getenv("SMART_EXPECT_WARM");
    const bool expectWarm =
        warmEnv && *warmEnv && std::string(warmEnv) != "0";
    serve::EvalService svc(cfg);

    serve::TraceConfig tcfg;
    tcfg.tenants = {"hog", "mouse"};
    tcfg.tenantWeights = {0.85, 0.15};
    tcfg.repeatFraction = 0.6;
    auto trace = serve::makeSyntheticTrace(tcfg);
    std::cout << "replaying " << trace.size() << " requests ("
              << tcfg.bursts << " bursts, " << tcfg.tenants.size()
              << " tenants) against the service...\n";

    const auto cold = serve::replayTrace(svc, trace, /*timeScale=*/1.0);
    const auto warm = serve::replayTrace(svc, trace, /*timeScale=*/1.0);

    Table t({"pass", "completed", "rejected", "hopeless", "shed",
             "expired", "cache hits", "coalesced", "wall ms"});
    for (const auto *p : {&cold, &warm}) {
        t.row()
            .cell(p == &cold ? "cold" : "warm")
            .integer(static_cast<long long>(p->completed))
            .integer(static_cast<long long>(p->rejected))
            .integer(static_cast<long long>(p->rejectedHopeless))
            .integer(static_cast<long long>(p->shed))
            .integer(static_cast<long long>(p->expired))
            .integer(static_cast<long long>(p->cacheHits))
            .integer(static_cast<long long>(p->coalesced))
            .num(p->wallMs, 1);
    }
    t.print(std::cout);

    Table per({"pass", "tenant", "submitted", "completed", "rejected",
               "shed", "cache hits"});
    for (const auto *p : {&cold, &warm}) {
        for (const auto &[tag, tally] : p->tenants) {
            per.row()
                .cell(p == &cold ? "cold" : "warm")
                .cell(tag)
                .integer(static_cast<long long>(tally.submitted))
                .integer(static_cast<long long>(tally.completed))
                .integer(static_cast<long long>(tally.rejected))
                .integer(static_cast<long long>(tally.shed))
                .integer(static_cast<long long>(tally.cacheHits));
        }
    }
    per.print(std::cout);

    // Estimator-driven deadline assignment, end to end: behind a
    // queue of in-flight fillers, a request with an impossible
    // deadline is refused up front with a suggested feasible one; the
    // resubmission carrying that suggestion is admitted once the
    // queue drains. Admission under load is timing-dependent, so the
    // handshake is attempted a few times before the smoke test calls
    // it a failure.
    bool suggestionDemoOk = false;
    double suggestedMs = 0.0;
    for (int attempt = 0; attempt < 5 && !suggestionDemoOk; ++attempt) {
        std::vector<std::future<serve::EvalResponse>> fillers;
        for (int i = 0; i < 16; ++i) {
            serve::EvalRequest fr;
            fr.cfg = accel::makeScheme(accel::Scheme::Sram);
            fr.model = cnn::convLayersOnly(cnn::makeAlexNet());
            fr.batch = 500 + 32 * attempt + i; // all cache misses
            fr.tag = "hog";
            auto sub = svc.submit(fr);
            if (sub.admitted())
                fillers.push_back(std::move(sub.response));
        }
        serve::EvalRequest doomed;
        doomed.cfg = accel::makeScheme(accel::Scheme::Sram);
        doomed.model = cnn::convLayersOnly(cnn::makeAlexNet());
        doomed.batch = 499;
        doomed.tag = "mouse";
        doomed.deadlineMs = 1e-3; // cannot survive the filler queue
        auto rejected = svc.submit(doomed);
        for (auto &f : fillers)
            f.get();
        if (rejected.admission != serve::Admission::RejectedHopeless ||
            rejected.suggestedDeadlineMs <= 0.0)
            continue;
        suggestedMs = rejected.suggestedDeadlineMs;
        svc.drain();
        doomed.deadlineMs = rejected.suggestedDeadlineMs;
        auto retried = svc.submit(doomed);
        if (retried.admitted() &&
            retried.response.get().status == serve::ResponseStatus::Ok)
            suggestionDemoOk = true;
    }
    std::cout << "suggested-deadline handshake: "
              << (suggestionDemoOk ? "rejected -> resubmitted Ok"
                                   : "FAILED")
              << " (suggested " << suggestedMs << " ms)\n";

    const auto m = svc.metrics();
    Table tc({"tenant", "cache entries", "cache bytes", "budget",
              "cache evictions"});
    for (const auto &tcs : m.tenantCache) {
        tc.row()
            .cell(tcs.tag)
            .integer(static_cast<long long>(tcs.entries))
            .integer(static_cast<long long>(tcs.bytes))
            .integer(static_cast<long long>(cfg.tenantCacheBytes))
            .integer(static_cast<long long>(tcs.evictions));
    }
    tc.print(std::cout);

    Table tslo({"tenant", "completed", "p95 (ms)", "SLO p95 (ms)",
                "violated windows"});
    for (const auto &ts : m.tenantSlo) {
        tslo.row()
            .cell(ts.tag)
            .integer(static_cast<long long>(ts.completed))
            .num(ts.latencyP95Ms, 3)
            .num(ts.sloP95Ms, 1)
            .integer(static_cast<long long>(ts.violatedWindows));
    }
    tslo.print(std::cout);

    Table s({"metric", "value"});
    s.row().cell("cache hit rate (%)").num(100.0 * m.cacheHitRate, 1);
    s.row().cell("cache evictions").integer(
        static_cast<long long>(m.cacheEvictions));
    s.row().cell("cache entries").integer(
        static_cast<long long>(m.cacheEntries));
    s.row().cell("rejected hopeless").integer(
        static_cast<long long>(m.rejectedHopeless));
    s.row().cell("est service (ms)").num(m.estServiceMs, 3);
    s.row().cell("est wave (ms)").num(m.estWaveMs, 3);
    s.row().cell("mean wave size").num(m.meanWaveSize, 2);
    s.row().cell("wave limit (adaptive)").integer(
        static_cast<long long>(m.waveLimit));
    s.row().cell("SLO p95 target (ms)").num(m.sloP95Ms, 1);
    s.row().cell("SLO windows violated").integer(
        static_cast<long long>(m.sloViolatedWindows));
    s.row().cell("latency p50 (ms)").num(m.latencyP50Ms, 3);
    s.row().cell("latency p95 (ms)").num(m.latencyP95Ms, 3);
    s.row().cell("latency p99 (ms)").num(m.latencyP99Ms, 3);
    s.row().cell("throughput (req/s)").num(m.throughputRps, 1);
    s.row().cell("queue high water").integer(
        static_cast<long long>(m.queueHighWater));
    if (!cfg.diskCachePath.empty()) {
        s.row().cell("L2 hits").integer(
            static_cast<long long>(m.l2Hits));
        s.row().cell("L2 misses").integer(
            static_cast<long long>(m.l2Misses));
        s.row().cell("L2 puts").integer(
            static_cast<long long>(m.l2Puts));
        s.row().cell("L2 entries").integer(
            static_cast<long long>(m.l2Entries));
        s.row().cell("L2 corrupt skipped").integer(
            static_cast<long long>(m.l2CorruptSkipped));
    }
    s.print(std::cout);

    // Per-stage latency breakdown from the sampled traces: the
    // queue_wait + serve pair partitions each request's end-to-end
    // time; the schedule/execute stages sit inside serve.
    if (!m.stages.empty()) {
        Table st({"stage", "count", "p50 (ms)", "p95 (ms)"});
        for (const auto &stage : m.stages) {
            st.row()
                .cell(stage.name)
                .integer(static_cast<long long>(stage.count))
                .num(stage.p50Ms, 3)
                .num(stage.p95Ms, 3);
        }
        st.print(std::cout);
    }

    // Flight recorder: every sampled request that expired or was
    // refused as hopeless left its span history here ("[]" when the
    // replay went cleanly).
    std::cout << "incident log (" << "last "
              << cfg.incidentLogCap << " max): "
              << svc.dumpIncidents() << "\n";

    if (json) {
        std::ofstream os(out);
        os << m.toJson("smart_serve");
        std::cout << "wrote " << out << "\n";
    }

    if (!cold.consistent() || !warm.consistent()) {
        std::cerr << "FAIL: replay accounting is inconsistent\n";
        return 1;
    }
    if (warm.completed > 0 && warm.cacheHits == 0) {
        std::cerr << "FAIL: warm pass produced no cache hits\n";
        return 1;
    }
    if (m.cacheEntries > cfg.cacheMaxEntries) {
        std::cerr << "FAIL: cache bound not enforced\n";
        return 1;
    }
    // Every distinct served key was resident at some point; more
    // distinct keys than capacity therefore implies LRU evictions
    // (the clear-on-overflow failure mode showed up as zero here).
    std::set<std::uint64_t> digests;
    for (const auto *p : {&cold, &warm})
        for (const auto &r : p->responses)
            if (r.status == serve::ResponseStatus::Ok)
                digests.insert(r.digest);
    if (digests.size() > cfg.cacheMaxEntries && m.cacheEvictions == 0) {
        std::cerr << "FAIL: cache overflowed without LRU evictions\n";
        return 1;
    }
    // Per-tenant budgets: no tenant's resident bytes may exceed its
    // configured slice, ever (enforced at every put).
    for (const auto &tcs : m.tenantCache) {
        if (tcs.bytes > cfg.tenantCacheBytes) {
            std::cerr << "FAIL: tenant " << tcs.tag
                      << " over its cache budget (" << tcs.bytes
                      << " > " << cfg.tenantCacheBytes << ")\n";
            return 1;
        }
    }
    // Per-tenant SLO rows: both tenants completed work, so both must
    // carry a latency/SLO row, with the mouse's stricter target and
    // the hog's inherited global target resolved correctly.
    bool sawHogSlo = false, sawMouseSlo = false;
    for (const auto &ts : m.tenantSlo) {
        if (ts.tag == "hog")
            sawHogSlo = ts.sloP95Ms == cfg.sloP95Ms;
        else if (ts.tag == "mouse")
            sawMouseSlo = ts.sloP95Ms == 150.0;
    }
    if (!sawHogSlo || !sawMouseSlo) {
        std::cerr << "FAIL: per-tenant SLO rows missing or carrying "
                     "the wrong resolved target\n";
        return 1;
    }
    // Crash-recovery leg: a rerun against a populated disk cache must
    // actually warm-start (L2 hits promote into L1 and serve), even
    // when the first run's log carries injected torn writes.
    if (expectWarm && m.l2Hits == 0) {
        std::cerr << "FAIL: SMART_EXPECT_WARM set but the run saw no "
                     "L2 (disk cache) hits\n";
        return 1;
    }
    if (!suggestionDemoOk) {
        std::cerr << "FAIL: suggested-deadline handshake did not "
                     "complete (no rejection with a suggestion, or "
                     "the resubmission failed)\n";
        return 1;
    }
    std::cout << "OK: all requests accounted for; warm pass hit the "
                 "LRU-bounded result cache; tenant budgets and SLO "
                 "rows held; suggested deadline admitted on retry\n";
    return 0;
}
