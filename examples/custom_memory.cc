/**
 * @file
 * Plugging a hypothetical future cryogenic memory into the framework:
 * define its Table-1-style parameters, evaluate it both as a full SPM
 * replacement and as SMART's RANDOM array via the write-latency /
 * busy-time hooks, and compare against the shipped technologies.
 */

#include <iostream>

#include "accel/perf.hh"
#include "common/logging.hh"
#include "cnn/models.hh"
#include "common/table.hh"
#include "cryomem/random_array.hh"

int
main()
{
    using namespace smart;

    setInformEnabled(false);
    auto model = cnn::convLayersOnly(cnn::makeModel("ResNet50"));

    // A hypothetical "fast JJ memory": VTM-like latency with MRAM-like
    // density. Until it has its own TechParams entry, evaluate it by
    // overriding the RANDOM array timing hooks of a Heter-style scheme
    // (the same hook Fig. 25 uses).
    Table t({"RANDOM candidate", "write lat (ns)",
             "single thr (TMAC/s)", "vs SMART"});

    auto smart_cfg = accel::makeSmart();
    const double smart_thr =
        accel::runInference(smart_cfg, model, 1).throughputTmacs();

    struct Candidate
    {
        const char *name;
        double writeNs; //!< 0 = keep the CMOS-SFQ model.
    };
    const Candidate candidates[] = {
        {"CMOS-SFQ (paper)", 0.0},
        {"hypothetical fast-JJ (0.05 ns)", 0.05},
        {"MRAM-class writes (2 ns)", 2.0},
        {"SNM-class writes (3 ns)", 3.0},
    };
    for (const auto &c : candidates) {
        accel::AcceleratorConfig cfg = accel::makeSmart();
        cfg.randomWriteLatencyNsOverride = Nanoseconds{c.writeNs};
        const double thr =
            accel::runInference(cfg, model, 1).throughputTmacs();
        t.row()
            .cell(c.name)
            .num(c.writeNs > 0 ? c.writeNs : 0.103, 3)
            .num(thr, 1)
            .num(thr / smart_thr, 2);
    }

    std::cout << "ResNet50 single-image with candidate RANDOM "
                 "technologies:\n";
    t.print(std::cout);

    // The same candidate as a standalone array, via the cryomem layer.
    cryo::RandomArrayConfig rc;
    rc.tech = cryo::MemTech::Vtm;
    rc.capacityBytes = 4 * units::mib;
    cryo::RandomArrayModel arr(rc);
    std::cout << "\nstandalone 4 MB VTM array: read "
              << formatNum(arr.readLatencyNs().value(), 2) << " ns, area "
              << formatNum(units::um2ToMm2(arr.area().totalUm2()), 2)
              << " mm^2, leakage "
              << formatSci(arr.leakageW().value(), 2) << " W\n";
    return 0;
}
