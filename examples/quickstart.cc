/**
 * @file
 * Quickstart: build the SMART configuration, run a single-image
 * AlexNet inference, and print throughput, utilization, and the energy
 * breakdown — the library's core loop in ~30 lines.
 */

#include <iostream>

#include "accel/energy.hh"
#include "accel/perf.hh"
#include "cnn/models.hh"
#include "common/table.hh"

int
main()
{
    using namespace smart;

    // 1. A Table-4 SMART accelerator: 64x256 PEs at 52.6 GHz, three
    //    32 KB SHIFT staging arrays, a 28 MB pipelined CMOS-SFQ RANDOM
    //    array, and the ILP compiler with prefetch window a = 3.
    accel::AcceleratorConfig cfg = accel::makeSmart();

    // 2. A workload: AlexNet's convolution trunk.
    cnn::CnnModel model = cnn::convLayersOnly(cnn::makeAlexNet());

    // 3. Run the cycle-level performance model.
    accel::InferenceResult r = accel::runInference(cfg, model, 1);

    // 4. Attach the energy model (400x cooling for the 4 K parts).
    accel::EnergyBreakdown e = accel::computeEnergy(cfg, r);

    std::cout << "SMART / " << model.name << " (single image)\n";
    Table t({"metric", "value"});
    t.row().cell("cycles").integer(
        static_cast<long long>(r.totalCycles));
    t.row().cell("latency (us)").num(r.seconds * 1e6, 2);
    t.row().cell("throughput (TMAC/s)").num(r.throughputTmacs(), 1);
    t.row().cell("PE utilization (%)").num(
        100.0 * r.utilization(cfg), 1);
    t.row().cell("energy, cooled (uJ)").num(
        e.totalJ(cfg.coolingFactor).value() * 1e6, 2);
    t.row().cell("  matrix share (%)").num(
        100.0 * e.matrixJ / e.physicalJ(), 1);
    t.row().cell("  SPM dynamic share (%)").num(
        100.0 * e.spmDynamicJ / e.physicalJ(), 1);
    t.print(std::cout);

    // Per-layer picture.
    Table l({"layer", "compute", "total", "stall %"});
    for (const auto &lr : r.layers) {
        l.row()
            .cell(lr.name)
            .integer(static_cast<long long>(lr.computeCycles))
            .integer(static_cast<long long>(lr.totalCycles))
            .num(100.0 *
                     (static_cast<double>(lr.totalCycles) -
                      static_cast<double>(lr.computeCycles)) /
                     static_cast<double>(lr.totalCycles),
                 1);
    }
    l.print(std::cout);
    return 0;
}
