/**
 * @file
 * Design-space exploration as an application: sweep the RANDOM array
 * capacity and the SHIFT staging size under a chip-area budget and
 * report the best configuration for batch GoogleNet serving — the kind
 * of what-if a SMART adopter would run.
 */

#include <iostream>

#include "accel/energy.hh"
#include "accel/perf.hh"
#include "common/logging.hh"
#include "cnn/models.hh"
#include "common/table.hh"
#include "cryomem/cmos_sfq_array.hh"

int
main()
{
    using namespace smart;

    setInformEnabled(false);
    auto model = cnn::convLayersOnly(cnn::makeGoogleNet());
    const double area_budget_mm2 = 60.0;

    Table t({"RANDOM (MB)", "SHIFT (KB)", "area (mm^2)", "fits",
             "batch thr (TMAC/s)", "energy/img (uJ)"});

    double best_thr = 0.0;
    std::string best;
    for (std::uint64_t mb : {14, 28, 56}) {
        for (std::uint64_t kb : {16, 32, 64}) {
            accel::AcceleratorConfig cfg = accel::makeSmart();
            cfg.randomArray.capacityBytes = mb * units::mib;
            cfg.inputSpm.capacityBytes = kb * units::kib;
            cfg.outputSpm.capacityBytes = kb * units::kib;
            cfg.weightSpm.capacityBytes = kb * units::kib;

            cryo::CmosSfqArrayConfig rc;
            rc.capacityBytes = cfg.randomArray.capacityBytes;
            rc.banks = cfg.randomArray.banks;
            cryo::CmosSfqArrayModel arr(rc);
            const double area_mm2 =
                units::um2ToMm2(arr.area().totalUm2()) + 8.0;
            const bool fits = area_mm2 <= area_budget_mm2;

            auto r = accel::runInference(cfg, model, 20);
            auto e = accel::computeEnergy(cfg, r);
            const double thr = r.throughputTmacs();
            t.row()
                .integer(static_cast<long long>(mb))
                .integer(static_cast<long long>(kb))
                .num(area_mm2, 1)
                .cell(fits ? "yes" : "no")
                .num(thr, 1)
                .num(e.totalJ(cfg.coolingFactor).value() / 20 * 1e6, 2);
            if (fits && thr > best_thr) {
                best_thr = thr;
                best = std::to_string(mb) + " MB RANDOM / " +
                       std::to_string(kb) + " KB SHIFT";
            }
        }
    }

    std::cout << "GoogleNet batch-20 serving under a "
              << formatNum(area_budget_mm2, 0) << " mm^2 budget:\n";
    t.print(std::cout);
    std::cout << "\nbest in budget: " << best << " ("
              << formatNum(best_thr, 1) << " TMAC/s)\n";
    return 0;
}
