/**
 * @file
 * Deploying ResNet50 with the ILP compiler: builds the per-layer DAGs,
 * runs the ILP scheduling pass explicitly, and prints where each
 * layer's memory objects land (SHIFT / RANDOM / DRAM) and how much of
 * the staging is hidden by prefetching — the Sec. 4.3 pipeline as a
 * user-visible workflow.
 */

#include <iostream>

#include "accel/perf.hh"
#include "common/logging.hh"
#include "cnn/models.hh"
#include "common/table.hh"
#include "compiler/ilpsched.hh"

int
main()
{
    using namespace smart;
    using namespace smart::compiler;

    setInformEnabled(false);
    auto model = cnn::convLayersOnly(cnn::makeResNet50());

    SchedParams params;
    params.shiftCapacityBytes = ByteCount{32 * 1024};
    params.randomCapacityBytes = ByteCount{28ull * 1024 * 1024};
    params.prefetchIterations = 3;

    Table t({"layer", "iters", "beta place", "alpha place",
             "prefetch %", "B&B nodes"});
    int shown = 0;
    for (const auto &layer : model.layers) {
        if (++shown > 12)
            break; // first stage is representative
        auto demand = systolic::analyzeDemand(layer, {64, 256});
        LayerDag dag = buildLayerDag(layer, demand);
        Schedule s = scheduleIlp(dag, params);

        auto dominant = [&](ObjClass c) {
            double best = -1.0;
            Placement where = Placement::Dram;
            for (Placement p : {Placement::Shift, Placement::Random,
                                Placement::Dram}) {
                const double f = s.servedFraction(dag, c, p);
                if (f > best) {
                    best = f;
                    where = p;
                }
            }
            return std::string(placementName(where));
        };

        t.row()
            .cell(layer.name)
            .integer(dag.iterations)
            .cell(dominant(ObjClass::Input))
            .cell(dominant(ObjClass::Weight))
            .num(100.0 * s.prefetchedFraction(dag), 0)
            .integer(s.bnbNodes);
    }

    std::cout << "ILP schedules for the first ResNet50 layers:\n";
    t.print(std::cout);

    // End-to-end effect of the compiler.
    auto smart_cfg = accel::makeSmart();
    auto pipe_cfg = accel::makePipeScheme();
    auto with = accel::runInference(smart_cfg, model, 1);
    auto without = accel::runInference(pipe_cfg, model, 1);
    std::cout << "\nResNet50 single-image throughput: "
              << formatNum(with.throughputTmacs(), 1)
              << " TMAC/s with the ILP compiler vs "
              << formatNum(without.throughputTmacs(), 1)
              << " TMAC/s without (Pipe scheme)\n";
    return 0;
}
